package opsim

import (
	"math/rand"
	"strings"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// nmcaSeedCorpus pins fuzz seeds that have historically exercised the
// nMCA per-core visibility-order machinery (source-FIFO vs coherence-order
// interleavings). quick.Check draws fresh seeds every run; this corpus
// makes the interesting ones permanent regression tests.
var nmcaSeedCorpus = []int64{
	3,          // multi-writer same-location: coherence order vs apply order
	17,         // AMO mixed with plain stores across two locations
	42,         // fence-heavy: drain stalls interleaved with applies
	1701,       // the paper-suite size, for luck — reader-side reordering
	0x5eed,     // three threads, both locations written concurrently
	0xf15e15,   // Figure 15 family density: writes racing two readers
	987654321,  // long per-thread programs, deep apply backlogs
	1145141919, // AMO release flushing against pending applies
}

// TestNMCASeedCorpus replays the pinned seeds through the same
// operational/axiomatic differential as TestFuzzDifferentialNMCA.
func TestNMCASeedCorpus(t *testing.T) {
	for _, seed := range nmcaSeedCorpus {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		op := NewNMCA(p).Outcomes()
		ax, err := uspec.NWR(uspec.Curr).Evaluate(p)
		if err != nil {
			t.Fatalf("seed %d: axiomatic: %v\n%s", seed, err, p)
		}
		for o := range op {
			if !ax.Observable[o] {
				t.Errorf("seed %d: outcome %q reachable operationally, forbidden axiomatically on nWR\n%s", seed, o, p)
			}
		}
		for o := range ax.Observable {
			if !op[o] {
				t.Errorf("seed %d: outcome %q observable axiomatically on nWR, unreachable operationally\n%s", seed, o, p)
			}
		}
	}
}

// TestNMCAVisibilityOrderEdge is the handcrafted companion to the seed
// corpus: the WRC visibility-order edge the paper's Figure 15 family
// exercises (§5.1.1). Under nMCA a write can be applied at one reader
// core before another, so causality leaks through non-cumulative fences;
// the test pins the full outcome set against the axiomatic nWR model and
// demands an operational trace witness for the causality violation.
func TestNMCAVisibilityOrderEdge(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !crossCheckNMCA(t, tst.Name, prog) {
		return
	}
	wit := NewNMCA(prog).Trace(tst.Specified)
	if len(wit) == 0 {
		t.Fatal("no operational trace witness for the WRC visibility-order outcome")
	}
	// The witness must be a genuine nMCA schedule: the violation requires
	// a per-core apply step (a write visible at one core, pending at
	// another) — a purely drain/execute schedule is the MCA machine.
	sawApply := false
	for _, line := range wit {
		if strings.Contains(line, ": apply ") {
			sawApply = true
			break
		}
	}
	if !sawApply {
		t.Errorf("trace witness has no per-core apply step — not an nMCA schedule:\n%v", wit)
	}
	// The same outcome must be unreachable on the MCA machine, so the
	// witness is specifically about non-multi-copy-atomicity.
	if New(prog).Trace(tst.Specified) != nil {
		t.Error("MCA machine also reaches the outcome — the edge is not visibility-order specific")
	}
}
