package opsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// crossCheckNMCA asserts operational/axiomatic agreement on the nWR model.
func crossCheckNMCA(t *testing.T, name string, p *isa.Program) bool {
	t.Helper()
	op := NewNMCA(p).Outcomes()
	ax, err := uspec.NWR(uspec.Curr).Evaluate(p)
	if err != nil {
		t.Fatalf("%s: axiomatic: %v", name, err)
	}
	ok := true
	for o := range op {
		if !ax.Observable[o] {
			t.Errorf("%s: outcome %q reachable operationally but forbidden axiomatically on nWR", name, o)
			ok = false
		}
	}
	for o := range ax.Observable {
		if !op[o] {
			t.Errorf("%s: outcome %q observable axiomatically on nWR but unreachable operationally", name, o)
			ok = false
		}
	}
	return ok
}

// TestNMCAOperationalMatchesAxiomatic cross-checks the nWR model on the
// paper's bug-bearing shapes under both mappings.
func TestNMCAOperationalMatchesAxiomatic(t *testing.T) {
	cases := []struct {
		shape  *litmus.Shape
		orders []c11.Order
	}{
		{litmus.WRC, []c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}},
		{litmus.WRC, []c11.Order{c11.SC, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}},
		{litmus.MP, []c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}},
		{litmus.MP, []c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}},
		{litmus.SB, []c11.Order{c11.SC, c11.SC, c11.SC, c11.SC}},
		{litmus.SB, []c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}},
		{litmus.CoRR, []c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx}},
		{litmus.RWC, []c11.Order{c11.SC, c11.Acq, c11.SC, c11.SC, c11.SC}},
	}
	for _, mapping := range []*compile.Mapping{compile.RISCVBaseIntuitive, compile.RISCVAtomicsIntuitive} {
		for _, cse := range cases {
			tst := cse.shape.Instantiate(cse.orders)
			prog, err := compile.Compile(mapping, tst.Prog)
			if err != nil {
				t.Fatal(err)
			}
			crossCheckNMCA(t, tst.Name+"/"+mapping.Name, prog)
		}
	}
}

// TestNMCAOperationalIRIW: the nMCA machine reaches the IRIW outcome with
// relaxed loads — per-core application orders genuinely diverge — and the
// intuitive SC mapping (non-cumulative fences) fails to forbid it, the
// paper's Section 5.1.2 bug reproduced operationally.
func TestNMCAOperationalIRIW(t *testing.T) {
	rlx := litmus.IRIW.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, rlx.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !NewNMCA(prog).Outcomes()[rlx.Specified] {
		t.Error("IRIW unreachable on the operational nMCA machine")
	}
	sc := litmus.IRIW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC, c11.SC})
	prog2, err := compile.Compile(compile.RISCVBaseIntuitive, sc.Prog)
	if err != nil {
		t.Fatal(err)
	}
	sim := NewNMCA(prog2)
	if !sim.Outcomes()[sc.Specified] {
		t.Error("non-cumulative fences forbade IRIW operationally — §5.1.2 bug not reproduced")
	}
	if sim.States == 0 {
		t.Error("no states explored")
	}
}

// TestNMCAOperationalWRCBug: the WRC causality violation is reachable
// operationally on nWR under the intuitive Base mapping (the §5.1.1 bug),
// and unreachable on the MCA WR machine.
func TestNMCAOperationalWRCBug(t *testing.T) {
	tst := litmus.WRC.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	if !NewNMCA(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug unreachable on the operational nMCA machine")
	}
	if New(prog).Outcomes()[tst.Specified] {
		t.Error("WRC bug reachable on the MCA machine — store atomicity broken")
	}
}

// TestFuzzDifferentialNMCA: random programs agree between the operational
// nWR machine and the axiomatic nWR model.
func TestFuzzDifferentialNMCA(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := randomProgram(rng)
		op := NewNMCA(p).Outcomes()
		ax, err := uspec.NWR(uspec.Curr).Evaluate(p)
		if err != nil {
			t.Logf("axiomatic error: %v\n%s", err, p)
			return false
		}
		for o := range op {
			if !ax.Observable[o] {
				t.Logf("outcome %q reachable operationally, forbidden axiomatically on nWR\n%s", o, p)
				return false
			}
		}
		for o := range ax.Observable {
			if !op[o] {
				t.Logf("outcome %q observable axiomatically on nWR, unreachable operationally\n%s", o, p)
				return false
			}
		}
		return true
	}
	n := 80
	if testing.Short() {
		n = 15
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestNMCAAtomicAMOInstantVisibility: a store-atomic AMO (aq.rl) becomes
// visible to all cores at one instant — no reader order disagreement.
func TestNMCAAtomicAMOInstantVisibility(t *testing.T) {
	// IRIW with both writers as aq.rl AMO stores and relaxed readers: the
	// readers may still disagree? No: atomic writes apply everywhere at
	// once, but the two readers' loads interleave freely — the classic
	// result is that IRIW needs nMCA *stores*; with MCA stores it is
	// unobservable even with plain loads on in-order cores.
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	p.Add(0, riscv.AMOStore(mem.Const(1), mem.Const(0), true, true, false))
	p.Add(1, riscv.AMOStore(mem.Const(1), mem.Const(1), true, true, false))
	p.Add(2, riscv.LW(0, mem.Const(0)))
	p.Add(2, riscv.LW(1, mem.Const(1)))
	p.Add(3, riscv.LW(2, mem.Const(1)))
	p.Add(3, riscv.LW(3, mem.Const(0)))
	p.Observe(2, 0, "r0")
	p.Observe(2, 1, "r1")
	p.Observe(3, 2, "r2")
	p.Observe(3, 3, "r3")
	out := NewNMCA(p).Outcomes()
	if out["r0=1; r1=0; r2=1; r3=0"] {
		t.Error("IRIW reachable with store-atomic writers on in-order readers")
	}
	crossCheckNMCA(t, "iriw-atomic-writers", p)
}

// TestNMCAStoreAtomicAMOKeepsSourceFIFO pins the backend=both finding on
// mp under the base+a intuitive mapping: an SC store compiles to a
// store-atomic (aq.rl) AMO, and its single-instant application must not
// leapfrog the thread's earlier writes at cores that have not applied
// them yet. Before the fix the simulator reached the r0=1; r1=0 message-
// passing violation that the axiomatic nWR model (and a release AMO on
// real hardware) forbids.
func TestNMCAStoreAtomicAMOKeepsSourceFIFO(t *testing.T) {
	for _, orders := range [][]c11.Order{
		{c11.Rlx, c11.SC, c11.Acq, c11.Rlx},
		{c11.Rlx, c11.SC, c11.SC, c11.SC},
		{c11.Rel, c11.SC, c11.Rlx, c11.Rlx},
	} {
		tst := litmus.MP.Instantiate(orders)
		prog, err := compile.Compile(compile.RISCVAtomicsIntuitive, tst.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if NewNMCA(prog).Outcomes()[tst.Specified] {
			t.Errorf("%s: store-atomic AMO leaked %q past the thread's earlier write", tst.Name, tst.Specified)
		}
		crossCheckNMCA(t, tst.Name, prog)
	}
}

// TestNMCAStoreAtomicAMODeferredCommit pins the opposite direction of
// the same backend=both finding, on sb: the SC AMO's single visibility
// instant is deferred, not tied to execution. The thread runs past the
// AMO, so the classic store-buffering outcome stays reachable even when
// both stores are SC AMOs split across threads — exactly what the
// axiomatic nWR model admits (its VisibleAll node may come arbitrarily
// late). Committing at execute time wrongly hid this outcome.
func TestNMCAStoreAtomicAMODeferredCommit(t *testing.T) {
	for _, orders := range [][]c11.Order{
		{c11.Rlx, c11.SC, c11.SC, c11.Rlx},
		{c11.Rlx, c11.SC, c11.SC, c11.Acq},
	} {
		tst := litmus.SB.Instantiate(orders)
		prog, err := compile.Compile(compile.RISCVAtomicsIntuitive, tst.Prog)
		if err != nil {
			t.Fatal(err)
		}
		if !NewNMCA(prog).Outcomes()[tst.Specified] {
			t.Errorf("%s: deferred atomic commit should leave %q reachable", tst.Name, tst.Specified)
		}
		crossCheckNMCA(t, tst.Name, prog)
	}
}
