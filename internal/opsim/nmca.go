package opsim

import (
	"fmt"
	"strings"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

// NMCASimulator is an operational model of the nWR microarchitecture:
// per-core store visibility (non-multiple-copy-atomic stores) on top of an
// in-order core with a forwarding FIFO store buffer. It cross-validates
// the axiomatic nWR µhb model — the substrate on which the paper's
// cumulativity bugs (WRC, RWC, IRIW) live.
//
// Memory is modelled the CCICheck way: draining a store appends it to a
// global per-location coherence order; each core then *applies* drained
// writes at its own pace, subject to
//
//   - coherence: a core applies same-location writes in the global order;
//   - source FIFO: a core applies writes from one source thread in that
//     thread's drain order (the FIFO buffer of nWR maintains W→W, and the
//     non-cumulative fences' and releases' W→W ordering is per-core
//     pointwise — exactly the axiomatic model's pointwise-vis edges);
//   - store atomicity: an aq.rl ("SC") AMO write is a single pending
//     event that later *commits* — entering the coherence order and
//     every core's view at one instant, mirroring the axiomatic model's
//     single VisibleAll node. Crucially the instant is deferred, not
//     tied to execution: the thread runs on past the AMO and until the
//     commit fires no core, the writer included, observes the write.
//     The commit in turn waits for the thread's earlier writes to be
//     applied everywhere (pointwise W→W into a simultaneous event means
//     global visibility). The backend=both cross-check against the
//     axiomatic nWR model pinned this from both sides on the base+a
//     intuitive mapping: committing at execute time hid sb's relaxed
//     outcome, while dropping the single instant entirely let the
//     cumulativity litmus tests (WRC/RWC/IRIW with SC writers) through.
//
// A W→R fence (or an rl-annotated AMO load) additionally waits until the
// thread's own drained writes have been applied by every core — the
// operational reading of the axiomatic "flush" edges.
type NMCASimulator struct {
	p       *isa.Program
	maxRegs []int
	seen    map[string]bool
	out     map[mem.Outcome]bool
	// States counts distinct explored configurations.
	States int
}

// NewNMCA returns an operational nWR simulator.
func NewNMCA(p *isa.Program) *NMCASimulator {
	base := New(p)
	return &NMCASimulator{p: p, maxRegs: base.maxRegs, seen: map[string]bool{}, out: map[mem.Outcome]bool{}}
}

// drained is one coherence-ordered write.
type drained struct {
	loc    mem.Loc
	val    int64
	src    int // source thread
	srcSeq int // position in the source's drain order
	atomic bool
}

// pendingAtomic is an executed-but-uncommitted SC-AMO write: it sits
// outside the coherence order until its commit instant. add marks a
// fetch-add, whose write value reads memory at the commit itself so the
// read-modify-write stays indivisible.
type pendingAtomic struct {
	loc  mem.Loc
	data int64
	add  bool
}

// nstate is a full nMCA machine configuration.
type nstate struct {
	pc       []int
	regs     [][]int64
	sb       [][]sbEntry
	order    [][]int // per location: indices into writes, coherence order
	writes   []drained
	applied  [][]int // applied[c][loc]: prefix of order[loc] applied at c
	drainSeq []int   // per thread: number of writes drained so far
	pending  []*pendingAtomic
}

func (s *nstate) clone() *nstate {
	c := &nstate{
		pc:       append([]int(nil), s.pc...),
		writes:   append([]drained(nil), s.writes...),
		drainSeq: append([]int(nil), s.drainSeq...),
		pending:  append([]*pendingAtomic(nil), s.pending...),
	}
	c.regs = make([][]int64, len(s.regs))
	for i := range s.regs {
		c.regs[i] = append([]int64(nil), s.regs[i]...)
	}
	c.sb = make([][]sbEntry, len(s.sb))
	for i := range s.sb {
		c.sb[i] = append([]sbEntry(nil), s.sb[i]...)
	}
	c.order = make([][]int, len(s.order))
	for i := range s.order {
		c.order[i] = append([]int(nil), s.order[i]...)
	}
	c.applied = make([][]int, len(s.applied))
	for i := range s.applied {
		c.applied[i] = append([]int(nil), s.applied[i]...)
	}
	return c
}

func (s *nstate) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%v|%v|%v|%v|", s.pc, s.regs, s.order, s.applied, s.drainSeq, s.writes)
	for _, q := range s.sb {
		fmt.Fprintf(&b, "%v;", q)
	}
	for _, p := range s.pending {
		if p == nil {
			b.WriteString("-;")
		} else {
			fmt.Fprintf(&b, "%v;", *p)
		}
	}
	return b.String()
}

// view returns the value of loc as core c currently sees it (latest
// applied write, or the initial 0).
func (s *nstate) view(c int, loc mem.Loc) int64 {
	n := s.applied[c][loc]
	if n == 0 {
		return 0
	}
	return s.writes[s.order[loc][n-1]].val
}

// caughtUp reports whether core c has applied every drained write to loc.
func (s *nstate) caughtUp(c int, loc mem.Loc) bool {
	return s.applied[c][loc] == len(s.order[loc])
}

// canApply reports whether core c may apply the next write to loc:
// coherence gives the candidate; source FIFO requires all earlier-drained
// writes from the same source applied at c first.
func (s *nstate) canApply(c int, loc mem.Loc) bool {
	n := s.applied[c][loc]
	if n >= len(s.order[loc]) {
		return false
	}
	w := s.writes[s.order[loc][n]]
	for l := range s.order {
		for i := s.applied[c][l]; i < len(s.order[l]); i++ {
			prev := s.writes[s.order[l][i]]
			if prev.src == w.src && prev.srcSeq < w.srcSeq {
				return false // an earlier same-source write is still unapplied here
			}
		}
	}
	return true
}

// ownWritesGloballyApplied reports whether every write thread t has
// drained so far is applied at every core (the W→R flush condition).
func (s *nstate) ownWritesGloballyApplied(t int) bool {
	for c := range s.applied {
		for l := range s.order {
			for i := s.applied[c][l]; i < len(s.order[l]); i++ {
				if s.writes[s.order[l][i]].src == t {
					return false
				}
			}
		}
	}
	return true
}

// canCommit reports whether thread t's pending SC-AMO write may take its
// single visibility instant now: every core caught up on the location
// (the commit appends at the coherence tail and applies everywhere at
// once, so skipping an unapplied predecessor would break per-core
// coherence) and the thread's earlier writes applied at every core
// (pointwise W→W into a simultaneous event). Apply actions are always
// eventually enabled, so a pending commit can never deadlock.
func (s *nstate) canCommit(t int) bool {
	p := s.pending[t]
	if p == nil {
		return false
	}
	for c := range s.applied {
		if !s.caughtUp(c, p.loc) {
			return false
		}
	}
	return s.ownWritesGloballyApplied(t)
}

// commitPending fires thread t's pending SC-AMO write: the value is
// computed against the now-globally-agreed view (fetch-adds read here,
// keeping the RMW indivisible), appended to the coherence order, and
// applied at every core in the same instant.
func (s *NMCASimulator) commitPending(st *nstate, t int) {
	p := st.pending[t]
	st.pending[t] = nil
	val := p.data
	if p.add {
		val = st.view(t, p.loc) + p.data
	}
	s.appendWrite(st, t, p.loc, val, true)
	for c := range st.applied {
		st.applied[c][p.loc] = len(st.order[p.loc])
	}
}

// Outcomes exhaustively explores the machine and returns the reachable
// final states (cores quiesce: buffers empty, every write applied
// everywhere — eventual visibility).
func (s *NMCASimulator) Outcomes() map[mem.Outcome]bool {
	nlocs := s.p.Mem().NumLocs
	n := s.p.NumThreads()
	init := &nstate{
		pc:       make([]int, n),
		regs:     make([][]int64, n),
		sb:       make([][]sbEntry, n),
		order:    make([][]int, nlocs),
		applied:  make([][]int, n),
		drainSeq: make([]int, n),
	}
	init.pending = make([]*pendingAtomic, n)
	for t := 0; t < n; t++ {
		init.regs[t] = make([]int64, s.maxRegs[t])
		init.applied[t] = make([]int, nlocs)
	}
	s.explore(init)
	return s.out
}

func (s *NMCASimulator) explore(st *nstate) {
	k := st.key()
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	s.States++
	progress := false
	n := s.p.NumThreads()
	// Apply actions: any core advances any location's visibility.
	for c := 0; c < n; c++ {
		for l := range st.order {
			if st.canApply(c, mem.Loc(l)) {
				progress = true
				next := st.clone()
				next.applied[c][l]++
				s.explore(next)
			}
		}
	}
	for t := 0; t < n; t++ {
		// Commit: a pending SC-AMO write takes its global instant.
		if st.canCommit(t) {
			progress = true
			next := st.clone()
			s.commitPending(next, t)
			s.explore(next)
		}
		// Drain: move the SB head into the coherence order. The draining
		// core must be caught up on the location (it acquires the line)
		// and applies its own write immediately. A pending SC-AMO write
		// holds drains back: anything buffered behind it is later in
		// program order, and pointwise W→W says it may not become
		// visible anywhere before the atomic's instant.
		if len(st.sb[t]) > 0 && st.pending[t] == nil && st.caughtUp(t, st.sb[t][0].loc) {
			progress = true
			next := st.clone()
			e := next.sb[t][0]
			next.sb[t] = next.sb[t][1:]
			s.appendWrite(next, t, e.loc, e.val, false)
			s.explore(next)
		}
		// Execute the next instruction.
		if st.pc[t] < len(s.p.Instrs[t]) {
			ins := s.p.Instrs[t][st.pc[t]]
			if s.blocked(st, t, ins) {
				continue
			}
			progress = true
			next := st.clone()
			s.execute(next, t, ins)
			next.pc[t]++
			s.explore(next)
		}
	}
	if !progress {
		s.out[s.finalOutcome(st)] = true
	}
}

// appendWrite adds a drained/executed write to the coherence order and
// applies it at the writing core. Non-atomic writes reach the other
// cores through their own apply actions; SC-AMO commits follow this
// call with a simultaneous application at every core (the atomic flag
// records which writes took such an instant).
func (s *NMCASimulator) appendWrite(st *nstate, t int, loc mem.Loc, val int64, atomic bool) {
	id := len(st.writes)
	st.writes = append(st.writes, drained{loc: loc, val: val, src: t, srcSeq: st.drainSeq[t], atomic: atomic})
	st.drainSeq[t]++
	st.order[loc] = append(st.order[loc], id)
	st.applied[t][loc] = len(st.order[loc])
}

func (s *NMCASimulator) operand(st *nstate, t int, op mem.Operand) int64 {
	if op.Kind == mem.OpConst {
		return op.Const
	}
	return st.regs[t][op.Reg]
}

func (s *NMCASimulator) loc(st *nstate, t int, ins *isa.Instr) mem.Loc {
	return mem.Loc(s.operand(st, t, ins.Addr))
}

// scAtomic reports whether the AMO is store atomic under the current spec
// (aq.rl; this simulator models riscv-curr nWR).
func scAtomic(ins *isa.Instr) bool { return ins.Aq && ins.Rl }

func (s *NMCASimulator) blocked(st *nstate, t int, ins *isa.Instr) bool {
	switch {
	case ins.Op == isa.OpLoad:
		// Forwarding store buffer, W→R relaxed — except that an
		// uncommitted same-location SC-AMO write lives at the memory
		// system, not in the buffer, so the load must wait for its
		// instant (it may not read an older write than the thread's own).
		if p := st.pending[t]; p != nil && p.loc == s.loc(st, t, ins) {
			return true
		}
		return false
	case ins.Op == isa.OpAMOLoad:
		// Reads at the memory system: no same-location entry may be
		// buffered or pending; rl additionally waits for the whole
		// buffer and for global visibility of own writes — a pending
		// atomic is an own write not yet visible anywhere.
		l := s.loc(st, t, ins)
		if p := st.pending[t]; p != nil && p.loc == l {
			return true
		}
		for _, e := range st.sb[t] {
			if e.loc == l {
				return true
			}
		}
		if ins.Rl && (len(st.sb[t]) > 0 || st.pending[t] != nil || !st.ownWritesGloballyApplied(t)) {
			return true
		}
		return false
	case ins.Op.IsAMO():
		// Writing AMOs flush the buffer (W→W + not-buffered) and wait
		// for any in-flight atomic (SC pairs order their visibility
		// instants; plain writes may not overtake one pointwise).
		if st.pending[t] != nil || len(st.sb[t]) > 0 {
			return true
		}
		l := s.loc(st, t, ins)
		if scAtomic(ins) {
			if ins.Dst == mem.NoDst {
				// Pure SC write: executes into the pending slot and
				// commits later — nothing more to wait for here.
				return false
			}
			// SC read-modify-write with a destination: the read performs
			// at the same instant the write becomes visible, so the
			// commit conditions must already hold at execution.
			for c := range st.applied {
				if !st.caughtUp(c, l) {
					return true
				}
			}
			return !st.ownWritesGloballyApplied(t)
		}
		// Release (and relaxed) AMOs acquire the line and write through,
		// propagating per core under source FIFO — the pointwise-vis
		// reading of the eager release edges.
		return !st.caughtUp(t, l)
	case ins.Op == isa.OpFence:
		// W→R fences flush: own buffer empty and own writes applied
		// everywhere (a pending atomic included). Other classes are
		// covered by in-order execution and the source-FIFO application
		// rule.
		if ins.Pred.HasW() && ins.Succ.HasR() && ins.Cum != isa.CumLW {
			return len(st.sb[t]) > 0 || st.pending[t] != nil || !st.ownWritesGloballyApplied(t)
		}
	}
	return false
}

func (s *NMCASimulator) execute(st *nstate, t int, ins *isa.Instr) {
	switch ins.Op {
	case isa.OpLoad:
		l := s.loc(st, t, ins)
		val := st.view(t, l)
		for i := len(st.sb[t]) - 1; i >= 0; i-- {
			if st.sb[t][i].loc == l {
				val = st.sb[t][i].val
				break
			}
		}
		st.regs[t][ins.Dst] = val
	case isa.OpStore:
		st.sb[t] = append(st.sb[t], sbEntry{loc: s.loc(st, t, ins), val: s.operand(st, t, ins.Data)})
	case isa.OpAMOLoad:
		st.regs[t][ins.Dst] = st.view(t, s.loc(st, t, ins))
	case isa.OpAMOStore:
		l := s.loc(st, t, ins)
		if scAtomic(ins) {
			st.pending[t] = &pendingAtomic{loc: l, data: s.operand(st, t, ins.Data)}
		} else {
			s.appendWrite(st, t, l, s.operand(st, t, ins.Data), false)
		}
	case isa.OpAMOSwap:
		l := s.loc(st, t, ins)
		if scAtomic(ins) && ins.Dst == mem.NoDst {
			st.pending[t] = &pendingAtomic{loc: l, data: s.operand(st, t, ins.Data)}
			break
		}
		if ins.Dst != mem.NoDst {
			st.regs[t][ins.Dst] = st.view(t, l)
		}
		s.appendWrite(st, t, l, s.operand(st, t, ins.Data), scAtomic(ins))
		if scAtomic(ins) {
			// blocked() held this back until the commit conditions were
			// met, so the write's instant is now — apply it everywhere.
			for c := range st.applied {
				st.applied[c][l] = len(st.order[l])
			}
		}
	case isa.OpAMOAdd:
		l := s.loc(st, t, ins)
		if scAtomic(ins) && ins.Dst == mem.NoDst {
			st.pending[t] = &pendingAtomic{loc: l, data: s.operand(st, t, ins.Data), add: true}
			break
		}
		old := st.view(t, l)
		if ins.Dst != mem.NoDst {
			st.regs[t][ins.Dst] = old
		}
		s.appendWrite(st, t, l, old+s.operand(st, t, ins.Data), scAtomic(ins))
		if scAtomic(ins) {
			for c := range st.applied {
				st.applied[c][l] = len(st.order[l])
			}
		}
	case isa.OpFence:
		// Ordering handled in blocked().
	}
}

// Trace searches for an interleaving (execute, drain and per-core apply
// actions) reaching the target outcome and returns it as human-readable
// actions, or nil if unreachable. Like Simulator.Trace it uses its own
// visited set.
func (s *NMCASimulator) Trace(target mem.Outcome) []string {
	nlocs := s.p.Mem().NumLocs
	n := s.p.NumThreads()
	init := &nstate{
		pc:       make([]int, n),
		regs:     make([][]int64, n),
		sb:       make([][]sbEntry, n),
		order:    make([][]int, nlocs),
		applied:  make([][]int, n),
		drainSeq: make([]int, n),
	}
	init.pending = make([]*pendingAtomic, n)
	for t := 0; t < n; t++ {
		init.regs[t] = make([]int64, s.maxRegs[t])
		init.applied[t] = make([]int, nlocs)
	}
	seen := map[string]bool{}
	var path []string
	var found []string
	var dfs func(st *nstate) bool
	dfs = func(st *nstate) bool {
		k := st.key()
		if seen[k] {
			return false
		}
		seen[k] = true
		progress := false
		for c := 0; c < n; c++ {
			for l := range st.order {
				if st.canApply(c, mem.Loc(l)) {
					progress = true
					next := st.clone()
					w := next.writes[next.order[l][next.applied[c][l]]]
					next.applied[c][l]++
					path = append(path, fmt.Sprintf("T%d: apply %s=%d (written by T%d)",
						c, s.p.Mem().LocName(mem.Loc(l)), w.val, w.src))
					if dfs(next) {
						return true
					}
					path = path[:len(path)-1]
				}
			}
		}
		for t := 0; t < n; t++ {
			if st.canCommit(t) {
				progress = true
				next := st.clone()
				p := *st.pending[t]
				s.commitPending(next, t)
				path = append(path, fmt.Sprintf("T%d: commit atomic %s=%d to every core",
					t, s.p.Mem().LocName(p.loc), next.writes[len(next.writes)-1].val))
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
			if len(st.sb[t]) > 0 && st.pending[t] == nil && st.caughtUp(t, st.sb[t][0].loc) {
				progress = true
				next := st.clone()
				e := next.sb[t][0]
				next.sb[t] = next.sb[t][1:]
				s.appendWrite(next, t, e.loc, e.val, false)
				path = append(path, fmt.Sprintf("T%d: drain %s=%d into the coherence order",
					t, s.p.Mem().LocName(e.loc), e.val))
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
			if st.pc[t] < len(s.p.Instrs[t]) {
				ins := s.p.Instrs[t][st.pc[t]]
				if s.blocked(st, t, ins) {
					continue
				}
				progress = true
				next := st.clone()
				s.execute(next, t, ins)
				next.pc[t]++
				path = append(path, fmt.Sprintf("T%d: execute instruction %d", t, st.pc[t]))
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
		}
		if !progress && s.finalOutcome(st) == target {
			found = append([]string(nil), path...)
			return true
		}
		return false
	}
	if dfs(init) {
		return found
	}
	return nil
}

func (s *NMCASimulator) finalOutcome(st *nstate) mem.Outcome {
	mp := s.p.Mem()
	o := mem.OutcomeFromValues(mp.Observers, func(ob mem.Observer) int64 {
		return st.regs[ob.Thread][ob.Reg]
	})
	if len(mp.MemObservers) == 0 {
		return o
	}
	parts := make([]string, 0, len(mp.MemObservers))
	for _, m := range mp.MemObservers {
		n := len(st.order[m.Loc])
		var v int64
		if n > 0 {
			v = st.writes[st.order[m.Loc][n-1]].val
		}
		parts = append(parts, fmt.Sprintf("%s=%d", m.Label, v))
	}
	memPart := mem.Outcome(strings.Join(parts, "; "))
	if o == "" {
		return memPart
	}
	return o + "; " + memPart
}
