package opsim

import (
	"fmt"
	"os"
	"sync/atomic"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// This file is the operational backend's enumeration driver: it maps a
// µspec configuration to the simulator that implements the same machine
// operationally, or rejects it with a typed capability error. The
// mapping is content-based (relaxation bits, not model names), so a
// custom spec with a supported profile enumerates exactly like the
// builtin it aliases.
//
// Supported profiles:
//
//	profile                          machine
//	no relaxations                   SC (write-through, in-order)
//	relax WR                         WR (FIFO store buffer, no forwarding)
//	relax WR + forwarding            TSO (forwarding store buffer)
//	relax WR + forwarding + nMCA     nWR (per-core visibility), riscv-curr only
//
// Everything else — relaxed W→W or R→R (out-of-order structures the
// in-order simulators cannot express) and cache-protocol visibility —
// is a CapabilityError.

// CapabilityError reports a µspec configuration the operational backend
// cannot enumerate. Frontends surface it as a validation error for
// backend=opsim and as a skip note for backend=both.
type CapabilityError struct {
	// Model is the configuration's display name ("nMM/riscv-curr").
	Model string
	// Reason says which relaxation is out of the simulators' reach.
	Reason string
}

func (e *CapabilityError) Error() string {
	return fmt.Sprintf("opsim: %s: %s", e.Model, e.Reason)
}

// Enumerator is one operational machine bound to a compiled program:
// exhaustive outcome enumeration plus interleaving-witness extraction.
type Enumerator interface {
	// Outcomes explores every interleaving and returns the reachable
	// final-state set, in the same canonical form as the axiomatic side.
	Outcomes() map[mem.Outcome]bool
	// Trace searches for an interleaving reaching the target outcome and
	// returns it as human-readable actions, or nil if unreachable.
	Trace(target mem.Outcome) []string
	// StateCount reports distinct machine configurations explored so far.
	StateCount() int
}

// StateCount reports distinct explored configurations.
func (s *Simulator) StateCount() int { return s.States }

// StateCount reports distinct explored configurations.
func (s *NMCASimulator) StateCount() int { return s.States }

// MiswireEnv, when set in the environment, deliberately miswires the
// driver (see SetMiswired) — the subprocess form of the test hook behind
// the divergence-path e2e tests.
const MiswireEnv = "TRICHECK_OPSIM_MISWIRE"

// miswire reroutes the SC profile to the TSO machine when enabled, so a
// store-buffering outcome becomes operationally reachable on a config
// whose axiomatic side forbids it — a guaranteed, harmless divergence
// for exercising the backend=both cross-check path end to end.
var miswire atomic.Bool

func init() { miswire.Store(os.Getenv(MiswireEnv) != "") }

// SetMiswired toggles the deliberate driver miswiring (test hook; see
// MiswireEnv for the subprocess form).
func SetMiswired(on bool) { miswire.Store(on) }

// Supports reports whether the operational backend can enumerate the
// given µspec configuration; the error, when non-nil, is a
// *CapabilityError naming the unsupported relaxation.
func Supports(cfg uspec.Config) error {
	unsupported := func(reason string) error {
		return &CapabilityError{Model: fmt.Sprintf("%s/%s", cfg.Name, cfg.Variant), Reason: reason}
	}
	switch {
	case cfg.CacheProtocol:
		return unsupported("cache-protocol store visibility is not modelled operationally")
	case cfg.RelaxWW:
		return unsupported("relaxed W→W needs a non-FIFO store buffer the simulators do not model")
	case cfg.RelaxRR:
		return unsupported("relaxed R→R needs out-of-order load execution; the simulators are in-order")
	case cfg.NMCA && cfg.Variant != uspec.Curr:
		return unsupported("nMCA store-atomicity annotations are modelled for riscv-curr only")
	}
	return nil
}

// ForConfig maps a supported µspec configuration to its operational
// machine over a compiled program. Unsupported configurations return a
// *CapabilityError (the same decision Supports makes).
func ForConfig(cfg uspec.Config, p *isa.Program) (Enumerator, error) {
	if err := Supports(cfg); err != nil {
		return nil, err
	}
	switch {
	case cfg.NMCA:
		return NewNMCA(p), nil
	case cfg.RelaxWR && cfg.Forwarding:
		return NewTSO(p), nil
	case cfg.RelaxWR:
		return New(p), nil
	default:
		if miswire.Load() {
			// Deliberately the wrong machine: TSO reaches store-buffering
			// outcomes an SC config forbids axiomatically.
			return NewTSO(p), nil
		}
		return NewSC(p), nil
	}
}
