// Package opsim provides an operational (interleaving-based) simulator for
// the WR microarchitecture — the strongest Table 7 model: in-order cores,
// a FIFO store buffer per core without forwarding, and multi-copy-atomic
// memory. It exhaustively explores every interleaving of instruction
// execution and store-buffer drain events and collects the reachable final
// states.
//
// Its purpose is cross-validation: internal/uspec decides observability
// axiomatically (µhb graph acyclicity), opsim decides it operationally.
// On the WR model the two semantics must agree exactly — the
// TestOperationalMatchesAxiomatic tests check outcome-set equality in both
// directions, which exercises the rf/fr/ws/fence/AMO axioms against an
// independent implementation.
package opsim

import (
	"fmt"
	"strings"

	"tricheck/internal/isa"
	"tricheck/internal/mem"
)

// sbEntry is one buffered store.
type sbEntry struct {
	loc mem.Loc
	val int64
}

// state is a full machine configuration. States are memoized by their
// canonical string key.
type state struct {
	pc   []int
	regs [][]int64
	sb   [][]sbEntry
	mem  []int64
}

func (s *state) clone() *state {
	c := &state{
		pc:  append([]int(nil), s.pc...),
		mem: append([]int64(nil), s.mem...),
	}
	c.regs = make([][]int64, len(s.regs))
	for i := range s.regs {
		c.regs[i] = append([]int64(nil), s.regs[i]...)
	}
	c.sb = make([][]sbEntry, len(s.sb))
	for i := range s.sb {
		c.sb[i] = append([]sbEntry(nil), s.sb[i]...)
	}
	return c
}

func (s *state) key() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v|%v|%v|", s.pc, s.regs, s.mem)
	for _, q := range s.sb {
		fmt.Fprintf(&b, "%v;", q)
	}
	return b.String()
}

// Simulator explores a program on the operational WR (or, with
// Forwarding, TSO) machine.
type Simulator struct {
	p       *isa.Program
	maxRegs []int
	seen    map[string]bool
	out     map[mem.Outcome]bool
	// Forwarding lets plain loads read the newest same-address entry of
	// the local store buffer instead of stalling — turning the WR machine
	// into an x86-TSO-like one (cross-checked against uspec.TSO).
	Forwarding bool
	// WriteThrough retires stores directly to memory instead of the store
	// buffer. With in-order cores and MCA memory the buffer was the only
	// relaxation, so the machine becomes sequentially consistent
	// (cross-checked against the no-relaxations uspec SC config).
	WriteThrough bool
	// States counts distinct explored configurations (diagnostics).
	States int
}

// New returns a simulator for the program on the WR machine.
func New(p *isa.Program) *Simulator {
	s := &Simulator{p: p, seen: map[string]bool{}, out: map[mem.Outcome]bool{}}
	s.maxRegs = make([]int, p.NumThreads())
	for t, th := range p.Instrs {
		max := 0
		for _, ins := range th {
			if ins.Dst != mem.NoDst && ins.Dst+1 > max {
				max = ins.Dst + 1
			}
			for _, op := range []mem.Operand{ins.Addr, ins.Data} {
				if op.Kind == mem.OpReg && op.Reg+1 > max {
					max = op.Reg + 1
				}
			}
		}
		s.maxRegs[t] = max
	}
	return s
}

// NewTSO returns a simulator with store-buffer forwarding enabled.
func NewTSO(p *isa.Program) *Simulator {
	s := New(p)
	s.Forwarding = true
	return s
}

// NewSC returns a write-through simulator: the sequentially consistent
// machine of the no-relaxations µspec baseline.
func NewSC(p *isa.Program) *Simulator {
	s := New(p)
	s.WriteThrough = true
	return s
}

// Outcomes exhaustively explores all interleavings and returns the set of
// reachable final states (register observers plus final memory observers,
// in the same canonical form as the axiomatic side).
func (s *Simulator) Outcomes() map[mem.Outcome]bool {
	init := &state{
		pc:   make([]int, s.p.NumThreads()),
		mem:  make([]int64, s.p.Mem().NumLocs),
		regs: make([][]int64, s.p.NumThreads()),
		sb:   make([][]sbEntry, s.p.NumThreads()),
	}
	for t := range init.regs {
		init.regs[t] = make([]int64, s.maxRegs[t])
	}
	s.explore(init)
	return s.out
}

func (s *Simulator) explore(st *state) {
	k := st.key()
	if s.seen[k] {
		return
	}
	s.seen[k] = true
	s.States++

	progress := false
	for t := 0; t < s.p.NumThreads(); t++ {
		// Drain the oldest store-buffer entry.
		if len(st.sb[t]) > 0 {
			progress = true
			next := st.clone()
			e := next.sb[t][0]
			next.sb[t] = next.sb[t][1:]
			next.mem[e.loc] = e.val
			s.explore(next)
		}
		// Execute the next instruction if not blocked.
		if st.pc[t] < len(s.p.Instrs[t]) {
			ins := s.p.Instrs[t][st.pc[t]]
			if s.blocked(st, t, ins) {
				continue
			}
			progress = true
			next := st.clone()
			s.execute(next, t, ins)
			next.pc[t]++
			s.explore(next)
		}
	}
	if !progress {
		s.out[s.finalOutcome(st)] = true
	}
}

func (s *Simulator) operand(st *state, t int, op mem.Operand) int64 {
	if op.Kind == mem.OpConst {
		return op.Const
	}
	return st.regs[t][op.Reg]
}

func (s *Simulator) loc(st *state, t int, ins *isa.Instr) mem.Loc {
	return mem.Loc(s.operand(st, t, ins.Addr))
}

// blocked implements the WR stall conditions:
//   - a load stalls while a same-address store sits in the local buffer
//     (no forwarding: it must read memory, and reading around the buffered
//     store would violate coherence);
//   - AMOs execute at memory: same-address entries must drain first, and a
//     release-annotated AMO waits for the whole buffer (prior stores must
//     be visible before it);
//   - a fence ordering W→R stalls until the buffer is empty (that is the
//     only ordering the in-order core and FIFO buffer do not already give).
func (s *Simulator) blocked(st *state, t int, ins *isa.Instr) bool {
	switch {
	case ins.Op == isa.OpLoad:
		if s.Forwarding {
			return false // reads the newest SB entry or memory
		}
		l := s.loc(st, t, ins)
		for _, e := range st.sb[t] {
			if e.loc == l {
				return true
			}
		}
		return false
	case ins.Op.IsAMO():
		// AMOs execute at memory even under forwarding. A writing AMO
		// additionally flushes the store buffer first (like an x86 locked
		// operation): the machine preserves W→W order, so its write must
		// not become visible before earlier buffered stores.
		if ins.Op != isa.OpAMOLoad {
			return len(st.sb[t]) > 0
		}
		l := s.loc(st, t, ins)
		for _, e := range st.sb[t] {
			if e.loc == l {
				return true
			}
		}
		if ins.Rl && len(st.sb[t]) > 0 {
			return true
		}
		return false
	case ins.Op == isa.OpFence:
		if ins.Pred.HasW() && ins.Succ.HasR() && ins.Cum != isa.CumLW && len(st.sb[t]) > 0 {
			return true
		}
	}
	return false
}

// loadValue reads a location as thread t sees it: the newest same-address
// store-buffer entry under forwarding, else memory.
func (s *Simulator) loadValue(st *state, t int, l mem.Loc) int64 {
	if s.Forwarding {
		for i := len(st.sb[t]) - 1; i >= 0; i-- {
			if st.sb[t][i].loc == l {
				return st.sb[t][i].val
			}
		}
	}
	return st.mem[l]
}

func (s *Simulator) execute(st *state, t int, ins *isa.Instr) {
	switch ins.Op {
	case isa.OpLoad:
		st.regs[t][ins.Dst] = s.loadValue(st, t, s.loc(st, t, ins))
	case isa.OpStore:
		if s.WriteThrough {
			st.mem[s.loc(st, t, ins)] = s.operand(st, t, ins.Data)
			break
		}
		st.sb[t] = append(st.sb[t], sbEntry{loc: s.loc(st, t, ins), val: s.operand(st, t, ins.Data)})
	case isa.OpAMOLoad:
		// Atomic load: reads memory; the write-back of the same value is
		// silent (see isa.OpAMOLoad).
		st.regs[t][ins.Dst] = st.mem[s.loc(st, t, ins)]
	case isa.OpAMOStore:
		// Atomic store: bypasses the store buffer (MCA anyway) and writes
		// memory directly.
		st.mem[s.loc(st, t, ins)] = s.operand(st, t, ins.Data)
	case isa.OpAMOSwap:
		l := s.loc(st, t, ins)
		if ins.Dst != mem.NoDst {
			st.regs[t][ins.Dst] = st.mem[l]
		}
		st.mem[l] = s.operand(st, t, ins.Data)
	case isa.OpAMOAdd:
		l := s.loc(st, t, ins)
		old := st.mem[l]
		if ins.Dst != mem.NoDst {
			st.regs[t][ins.Dst] = old
		}
		st.mem[l] = old + s.operand(st, t, ins.Data)
	case isa.OpFence:
		// Ordering effects are captured by blocked(); nothing to do.
	}
}

// Trace searches for an interleaving reaching the target outcome and
// returns it as a list of human-readable actions, or nil if unreachable.
// It uses its own visited set, so call it on a fresh or reused Simulator
// freely.
func (s *Simulator) Trace(target mem.Outcome) []string {
	init := &state{
		pc:   make([]int, s.p.NumThreads()),
		mem:  make([]int64, s.p.Mem().NumLocs),
		regs: make([][]int64, s.p.NumThreads()),
		sb:   make([][]sbEntry, s.p.NumThreads()),
	}
	for t := range init.regs {
		init.regs[t] = make([]int64, s.maxRegs[t])
	}
	seen := map[string]bool{}
	var path []string
	var found []string
	var dfs func(st *state) bool
	dfs = func(st *state) bool {
		k := st.key()
		if seen[k] {
			return false
		}
		seen[k] = true
		progress := false
		for t := 0; t < s.p.NumThreads(); t++ {
			if len(st.sb[t]) > 0 {
				progress = true
				next := st.clone()
				e := next.sb[t][0]
				next.sb[t] = next.sb[t][1:]
				next.mem[e.loc] = e.val
				path = append(path, fmt.Sprintf("T%d: drain %s=%d to memory", t, s.p.Mem().LocName(e.loc), e.val))
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
			if st.pc[t] < len(s.p.Instrs[t]) {
				ins := s.p.Instrs[t][st.pc[t]]
				if s.blocked(st, t, ins) {
					continue
				}
				progress = true
				next := st.clone()
				s.execute(next, t, ins)
				next.pc[t]++
				path = append(path, fmt.Sprintf("T%d: execute instruction %d", t, st.pc[t]))
				if dfs(next) {
					return true
				}
				path = path[:len(path)-1]
			}
		}
		if !progress && s.finalOutcome(st) == target {
			found = append([]string(nil), path...)
			return true
		}
		return false
	}
	if dfs(init) {
		return found
	}
	return nil
}

func (s *Simulator) finalOutcome(st *state) mem.Outcome {
	mp := s.p.Mem()
	o := mem.OutcomeFromValues(mp.Observers, func(ob mem.Observer) int64 {
		return st.regs[ob.Thread][ob.Reg]
	})
	if len(mp.MemObservers) == 0 {
		return o
	}
	parts := make([]string, 0, len(mp.MemObservers))
	for _, m := range mp.MemObservers {
		parts = append(parts, fmt.Sprintf("%s=%d", m.Label, st.mem[m.Loc]))
	}
	memPart := mem.Outcome(strings.Join(parts, "; "))
	if o == "" {
		return memPart
	}
	return o + "; " + memPart
}
