package opsim

import (
	"errors"
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/litmus"
	"tricheck/internal/uspec"
)

// TestDriverCapabilityMatrix pins which builtin configurations the
// operational backend accepts, and that rejections are typed capability
// errors naming the model.
func TestDriverCapabilityMatrix(t *testing.T) {
	supported := map[string]bool{
		"SC": true, "TSO": true, "WR": true, "rWR": true, "nWR": true,
	}
	for _, m := range uspec.Builtins().All() {
		want := supported[m.Name] && !(m.Name == "nWR" && m.Variant != uspec.Curr)
		err := Supports(m.Config)
		if (err == nil) != want {
			t.Errorf("Supports(%s) = %v, want supported=%v", m.FullName(), err, want)
		}
		if err != nil {
			var capErr *CapabilityError
			if !errors.As(err, &capErr) {
				t.Errorf("Supports(%s) error %T is not a *CapabilityError", m.FullName(), err)
			} else if capErr.Model != m.FullName() {
				t.Errorf("capability error names %q, want %q", capErr.Model, m.FullName())
			}
		}
	}
}

// TestDriverMachineSelection: each supported profile maps to the machine
// with that profile's semantics, checked behaviourally on the SB litmus
// shape (W→R relaxation is exactly what separates SC from WR/TSO).
func TestDriverMachineSelection(t *testing.T) {
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		model     *uspec.Model
		weakSB    bool // the r0=0; r1=0 store-buffering outcome reachable?
		wantState string
	}{
		{uspec.SCProof(), false, "SC"},
		{uspec.WR(uspec.Curr), true, "WR"},
		{uspec.RWR(uspec.Curr), true, "rWR"},
		{uspec.TSO(), true, "TSO"},
		{uspec.NWR(uspec.Curr), true, "nWR"},
	} {
		sim, err := ForConfig(c.model.Config, prog)
		if err != nil {
			t.Fatalf("ForConfig(%s): %v", c.model.FullName(), err)
		}
		out := sim.Outcomes()
		if out[tst.Specified] != c.weakSB {
			t.Errorf("%s: SB outcome reachable=%v, want %v", c.model.FullName(), out[tst.Specified], c.weakSB)
		}
		if sim.StateCount() == 0 {
			t.Errorf("%s: no states explored", c.model.FullName())
		}
	}
	if _, err := ForConfig(uspec.RMM(uspec.Curr).Config, prog); err == nil {
		t.Error("ForConfig(rMM) succeeded; want a capability error")
	}
}

// TestDriverSCMatchesAxiomatic cross-checks the write-through machine
// against the no-relaxations µspec baseline on the paper shapes.
func TestDriverSCMatchesAxiomatic(t *testing.T) {
	sc := uspec.SCProof()
	for _, shapeName := range []string{"mp", "sb", "lb", "corr", "iriw"} {
		shape := litmus.ShapeByName(shapeName)
		orders := make([]c11.Order, len(shape.Slots))
		for i := range orders {
			orders[i] = c11.Rlx
		}
		tst := shape.Instantiate(orders)
		prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
		if err != nil {
			t.Fatal(err)
		}
		op := NewSC(prog).Outcomes()
		ax, err := sc.Evaluate(prog)
		if err != nil {
			t.Fatalf("%s: axiomatic: %v", tst.Name, err)
		}
		for o := range op {
			if !ax.Observable[o] {
				t.Errorf("%s: outcome %q reachable on the SC machine but forbidden axiomatically", tst.Name, o)
			}
		}
		for o := range ax.Observable {
			if !op[o] {
				t.Errorf("%s: outcome %q observable axiomatically on SC but unreachable operationally", tst.Name, o)
			}
		}
	}
}

// TestDriverMiswireHook: with the deliberate miswiring enabled, the SC
// profile is routed to the TSO machine — the store-buffering outcome
// becomes operationally reachable on a config that forbids it, which is
// the seeded divergence the backend=both e2e tests rely on.
func TestDriverMiswireHook(t *testing.T) {
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	SetMiswired(true)
	defer SetMiswired(false)
	sim, err := ForConfig(uspec.SCProof().Config, prog)
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Outcomes()[tst.Specified] {
		t.Error("miswired SC profile does not reach the SB outcome; the seeded divergence is gone")
	}
	if wit := sim.Trace(tst.Specified); len(wit) == 0 {
		t.Error("no trace witness for the miswired outcome")
	}
	SetMiswired(false)
	sim, err = ForConfig(uspec.SCProof().Config, prog)
	if err != nil {
		t.Fatal(err)
	}
	if sim.Outcomes()[tst.Specified] {
		t.Error("miswiring stuck: SC profile still reaches the SB outcome after SetMiswired(false)")
	}
}

// TestOperationalIRIWFence exercises the drain-order enumeration at four
// threads with fences in play: the SC-compiled IRIW program (full fence
// insertion under the intuitive Base mapping) pinned against the
// axiomatic verdict on the WR and TSO machines — the specified outcome
// must stay unreachable on any MCA machine, fences or not, and the full
// outcome sets must agree with the µhb models exactly.
func TestOperationalIRIWFence(t *testing.T) {
	tst := litmus.IRIW.Instantiate([]c11.Order{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC, c11.SC})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	crossCheck(t, tst.Name+"/wr", prog)
	if New(prog).Outcomes()[tst.Specified] {
		t.Error("fenced IRIW outcome reachable on the operational WR machine")
	}
	tso := NewTSO(prog)
	op := tso.Outcomes()
	if op[tst.Specified] {
		t.Error("fenced IRIW outcome reachable on the operational TSO machine")
	}
	ax, err := uspec.TSO().Evaluate(prog)
	if err != nil {
		t.Fatal(err)
	}
	for o := range op {
		if !ax.Observable[o] {
			t.Errorf("tso: outcome %q reachable operationally but forbidden axiomatically", o)
		}
	}
	for o := range ax.Observable {
		if !op[o] {
			t.Errorf("tso: outcome %q observable axiomatically but unreachable operationally", o)
		}
	}
}
