package opsim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"tricheck/internal/isa"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// randomProgram builds a small random RISC-V litmus program: 2–3 threads,
// 1–4 instructions each, over 2 locations, drawing from loads, stores, the
// full fence matrix and AMOs.
func randomProgram(rng *rand.Rand) *isa.Program {
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	nThreads := 2 + rng.Intn(2)
	reg := 0
	for t := 0; t < nThreads; t++ {
		n := 1 + rng.Intn(4)
		for i := 0; i < n; i++ {
			loc := mem.Const(int64(rng.Intn(2)))
			val := mem.Const(int64(1 + rng.Intn(2)))
			switch rng.Intn(6) {
			case 0, 1:
				p.Add(t, riscv.LW(reg, loc))
				p.Observe(t, reg, obsLabel(reg))
				reg++
			case 2, 3:
				p.Add(t, riscv.SW(val, loc))
			case 4:
				classes := []isa.Class{isa.ClassR, isa.ClassW, isa.ClassRW}
				p.Add(t, riscv.Fence(classes[rng.Intn(3)], classes[rng.Intn(3)]))
			case 5:
				switch rng.Intn(3) {
				case 0:
					p.Add(t, riscv.AMOLoad(reg, loc, rng.Intn(2) == 0, false, false))
					p.Observe(t, reg, obsLabel(reg))
					reg++
				case 1:
					p.Add(t, riscv.AMOStore(val, loc, false, rng.Intn(2) == 0, false))
				case 2:
					p.Add(t, riscv.AMOAdd(reg, val, loc, false, false, false))
					p.Observe(t, reg, obsLabel(reg))
					reg++
				}
			}
		}
	}
	p.Mem().AddMemObserver(0, "x")
	p.Mem().AddMemObserver(1, "y")
	return p
}

func obsLabel(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// differential cross-checks one random program between the operational and
// axiomatic semantics of the given machine.
func differential(t *testing.T, rng *rand.Rand, model *uspec.Model, forwarding bool) bool {
	p := randomProgram(rng)
	sim := New(p)
	sim.Forwarding = forwarding
	op := sim.Outcomes()
	ax, err := model.Evaluate(p)
	if err != nil {
		t.Logf("axiomatic error: %v\n%s", err, p)
		return false
	}
	for o := range op {
		if !ax.Observable[o] {
			t.Logf("outcome %q reachable operationally, forbidden axiomatically on %s\n%s", o, model.FullName(), p)
			return false
		}
	}
	for o := range ax.Observable {
		if !op[o] {
			t.Logf("outcome %q observable axiomatically on %s, unreachable operationally\n%s", o, model.FullName(), p)
			return false
		}
	}
	return true
}

// TestFuzzDifferentialWR: random programs agree between the operational WR
// machine and the axiomatic WR model.
func TestFuzzDifferentialWR(t *testing.T) {
	f := func(seed int64) bool {
		return differential(t, rand.New(rand.NewSource(seed)), uspec.WR(uspec.Curr), false)
	}
	n := 120
	if testing.Short() {
		n = 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestFuzzDifferentialTSO: the same with store-buffer forwarding against
// the TSO model.
func TestFuzzDifferentialTSO(t *testing.T) {
	f := func(seed int64) bool {
		return differential(t, rand.New(rand.NewSource(seed)), uspec.TSO(), true)
	}
	n := 120
	if testing.Short() {
		n = 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceWitness: Trace returns a real interleaving for a reachable
// outcome and nil for an unreachable one.
func TestTraceWitness(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	p.Add(0, riscv.LW(0, mem.Const(1)))
	p.Add(1, riscv.SW(mem.Const(1), mem.Const(1)))
	p.Add(1, riscv.LW(1, mem.Const(0)))
	p.Observe(0, 0, "r0")
	p.Observe(1, 1, "r1")
	sim := New(p)
	trace := sim.Trace("r0=0; r1=0")
	if trace == nil {
		t.Fatal("SB outcome should be reachable; no trace found")
	}
	if len(trace) < 4 {
		t.Errorf("trace too short: %v", trace)
	}
	if got := sim.Trace("r0=7; r1=7"); got != nil {
		t.Errorf("impossible outcome traced: %v", got)
	}
}
