package opsim

import (
	"testing"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/uspec"
)

// crossCheck asserts that the operational WR machine and the axiomatic WR
// µhb model agree exactly on the observable outcome set of a program.
func crossCheck(t *testing.T, name string, p *isa.Program) {
	t.Helper()
	op := New(p).Outcomes()
	ax, err := uspec.WR(uspec.Curr).Evaluate(p)
	if err != nil {
		t.Fatalf("%s: axiomatic: %v", name, err)
	}
	for o := range op {
		if !ax.Observable[o] {
			t.Errorf("%s: outcome %q reachable operationally but forbidden axiomatically", name, o)
		}
	}
	for o := range ax.Observable {
		if !op[o] {
			t.Errorf("%s: outcome %q observable axiomatically but unreachable operationally", name, o)
		}
	}
}

// TestOperationalMatchesAxiomaticBase cross-checks every paper shape in a
// few representative memory-order variants under the Base mapping.
func TestOperationalMatchesAxiomaticBase(t *testing.T) {
	variants := map[string][][]c11.Order{
		"mp": {
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
			{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx},
			{c11.SC, c11.SC, c11.SC, c11.SC},
		},
		"sb": {
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
			{c11.SC, c11.SC, c11.SC, c11.SC},
		},
		"wrc": {
			{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx},
			{c11.SC, c11.SC, c11.SC, c11.SC, c11.SC},
		},
		"corr": {
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
			{c11.Rlx, c11.Rlx, c11.Acq, c11.Acq},
		},
		"rwc": {
			{c11.SC, c11.Acq, c11.SC, c11.SC, c11.SC},
		},
		"lb": {
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
		},
		"s": {
			{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx},
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
		},
		"2+2w": {
			{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx},
		},
	}
	for shapeName, orderSets := range variants {
		shape := litmus.ShapeByName(shapeName)
		if shape == nil {
			t.Fatalf("unknown shape %s", shapeName)
		}
		for _, orders := range orderSets {
			tst := shape.Instantiate(orders)
			prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
			if err != nil {
				t.Fatal(err)
			}
			crossCheck(t, tst.Name, prog)
		}
	}
}

// TestOperationalMatchesAxiomaticAtomics cross-checks AMO-based programs
// (the Base+A mapping).
func TestOperationalMatchesAxiomaticAtomics(t *testing.T) {
	shapes := []struct {
		shape  *litmus.Shape
		orders []c11.Order
	}{
		{litmus.MP, []c11.Order{c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}},
		{litmus.MP, []c11.Order{c11.SC, c11.Rlx, c11.SC, c11.SC}},
		{litmus.SB, []c11.Order{c11.SC, c11.SC, c11.SC, c11.SC}},
		{litmus.WRC, []c11.Order{c11.Rlx, c11.Rlx, c11.Rel, c11.Acq, c11.Rlx}},
		{litmus.CoRR, []c11.Order{c11.Rlx, c11.Rlx, c11.Acq, c11.SC}},
	}
	for _, c := range shapes {
		tst := c.shape.Instantiate(c.orders)
		prog, err := compile.Compile(compile.RISCVAtomicsIntuitive, tst.Prog)
		if err != nil {
			t.Fatal(err)
		}
		crossCheck(t, tst.Name+"/base+a", prog)
	}
}

// TestOperationalIRIW: on the MCA WR machine the IRIW outcome is
// unreachable even with relaxed accesses that carry no fences at all —
// store atomicity alone forbids it... for in-order cores where the two
// reads of each reader execute in program order.
func TestOperationalIRIW(t *testing.T) {
	tst := litmus.IRIW.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	out := New(prog).Outcomes()
	if out[tst.Specified] {
		t.Error("IRIW reachable on the operational MCA machine")
	}
	crossCheck(t, tst.Name, prog)
}

// TestOperationalStoreBufferingReachable: the one relaxation WR has (W→R)
// is operationally visible: SB's weak outcome is reachable.
func TestOperationalStoreBufferingReachable(t *testing.T) {
	tst := litmus.SB.Instantiate([]c11.Order{c11.Rlx, c11.Rlx, c11.Rlx, c11.Rlx})
	prog, err := compile.Compile(compile.RISCVBaseIntuitive, tst.Prog)
	if err != nil {
		t.Fatal(err)
	}
	out := New(prog).Outcomes()
	if !out[tst.Specified] {
		t.Error("store buffering unreachable on a machine with store buffers")
	}
}

// TestOperationalAMOAtomicity: concurrent fetch-and-adds never lose
// updates operationally.
func TestOperationalAMOAtomicity(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 1, "x")
	p.Add(0, riscv.AMOAdd(0, mem.Const(1), mem.Const(0), false, false, false))
	p.Add(1, riscv.AMOAdd(0, mem.Const(1), mem.Const(0), false, false, false))
	p.Observe(0, 0, "a")
	p.Observe(1, 0, "b")
	p.Mem().AddMemObserver(0, "x")
	out := New(p).Outcomes()
	want := map[mem.Outcome]bool{"a=0; b=1; x=2": true, "a=1; b=0; x=2": true}
	if len(out) != len(want) {
		t.Fatalf("outcomes %v, want %v", out, want)
	}
	for o := range want {
		if !out[o] {
			t.Errorf("missing %q", o)
		}
	}
}

// TestOperationalDrainInterleavings: a buffered store becomes visible at a
// nondeterministic time: both orders of an MP handoff are reachable
// without fences.
func TestOperationalDrainInterleavings(t *testing.T) {
	p := isa.NewProgram(isa.RISCV, 2, "x", "y")
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(0)))
	p.Add(0, riscv.SW(mem.Const(1), mem.Const(1)))
	p.Add(1, riscv.LW(0, mem.Const(1)))
	p.Add(1, riscv.LW(1, mem.Const(0)))
	p.Observe(1, 0, "r0")
	p.Observe(1, 1, "r1")
	out := New(p).Outcomes()
	// FIFO drain forbids r0=1,r1=0 but everything else is reachable.
	if out["r0=1; r1=0"] {
		t.Error("FIFO store buffer violated")
	}
	for _, o := range []mem.Outcome{"r0=0; r1=0", "r0=0; r1=1", "r0=1; r1=1"} {
		if !out[o] {
			t.Errorf("missing reachable outcome %q", o)
		}
	}
	sim := New(p)
	sim.Outcomes()
	if sim.States == 0 {
		t.Error("no states explored")
	}
}
