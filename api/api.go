// Package api is the versioned wire schema of the tricheckd verification
// service: the /v1/verify request body, the NDJSON records it streams,
// and the /v1/stats and /v1/coverage response shapes. Both the server
// (internal/server) and the Go client (client) import this package, so
// the two sides can never disagree about the schema — and external
// consumers can depend on it without importing server internals.
//
// Compatibility contract: within a major version (Version), existing
// fields keep their names, types and meaning; new fields are added with
// omitempty so their absence is byte-identical to older payloads. The
// golden test in api_test.go locks the encoding.
package api

// Version is the wire-schema major version, matching the /v1/ URL prefix.
const Version = "v1"

// VerifyRequest is the JSON body of POST /v1/verify. Exactly one of
// Litmus, Suite or Family selects the tests; ISA and Variant select the
// stacks (empty = "both").
type VerifyRequest struct {
	// Litmus holds inline herd C litmus sources to verify.
	Litmus []string `json:"litmus,omitempty"`
	// Suite selects a built-in suite: "paper" (the 1,701-test Figure 15
	// suite) or "all" (every shipped shape, fully expanded).
	Suite string `json:"suite,omitempty"`
	// Family selects one built-in litmus family by shape name (mp, sb,
	// wrc, ...), fully expanded over the memory orders.
	Family string `json:"family,omitempty"`
	// ISA is the stack selector's ISA flavour: base, base+a or both
	// (default both).
	ISA string `json:"isa,omitempty"`
	// Variant is the MCM version: curr, ours or both (default both).
	// Mutually exclusive with Models (an inline model spec carries its
	// own variant).
	Variant string `json:"variant,omitempty"`
	// Models holds inline µspec model specs (the uspec spec text format)
	// to verify instead of the builtin Table 7 matrix. Each spec is
	// validated and paired with the Figure 15 mapping of its declared
	// variant over the selected ISA flavours; memo-cache identity comes
	// from the spec's config fingerprint, so a custom model never
	// collides with a same-named builtin.
	Models []string `json:"models,omitempty"`
	// Backend selects the verdict engine: "uhb" (default, axiomatic µhb),
	// "opsim" (operational enumeration; every selected model must be
	// within the simulators' capability), or "both" (uhb verdicts with an
	// operational second opinion; disagreements stream as "Divergence"
	// verdicts carrying a Divergence payload).
	Backend string `json:"backend,omitempty"`
	// Workers requests a farm worker count; the server clamps it to its
	// per-request budget (0 = the budget itself).
	Workers int `json:"workers,omitempty"`
	// Keys, when non-empty, restricts the sweep to the (test, stack)
	// pairs whose backend-tagged memo keys (core.JobKeyBackend — the Key
	// field of every verdict record) appear in the list. The fleet
	// coordinator uses it to dispatch one shard of a sweep to one worker:
	// keys are content-addressed, so both sides compute identical keys
	// from the same selectors. A key matching no resolved pair is
	// ignored, which is what lets a hedged re-dispatch name keys the
	// original worker already delivered.
	Keys []string `json:"keys,omitempty"`
}

// VerdictRecord is one streamed (test, stack) verdict, emitted in farm
// completion order.
type VerdictRecord struct {
	Type string `json:"type"` // "verdict"
	// Trace is the request's trace ID (hex): every record of one /v1/verify
	// stream carries the same ID, correlating it with /v1/traces spans and
	// server logs.
	Trace string `json:"trace,omitempty"`
	Done  int    `json:"done"`
	Total int    `json:"total"`
	Test  string `json:"test"`
	Stack string `json:"stack"`
	// Verdict is Bug, OverlyStrict, Equivalent or — under backend=both —
	// Divergence.
	Verdict string `json:"verdict"`
	// Key is the job's memo fingerprint (core.JobKey, backend-tagged for
	// non-uhb backends): test content hash + stack content hash,
	// comparable across processes.
	Key string `json:"key"`
	// Cached reports a memo-cache hit or deduplicated job (no verifier
	// execution).
	Cached bool `json:"cached"`
	// Backend names the verdict engine when it is not the default uhb.
	Backend string `json:"backend,omitempty"`
	// SpecifiedBug marks the test's designated interesting outcome as
	// forbidden-yet-observable on this stack — the paper's headline
	// counting. It rides on the record so a fleet coordinator can
	// aggregate per-stack specified_bugs tallies from merged streams
	// without re-running step 4.
	SpecifiedBug bool `json:"specified_bug,omitempty"`
	// Worker is the fleet worker URL that produced this record; set only
	// on coordinator-merged streams with more than one worker.
	Worker string `json:"worker,omitempty"`
	// Divergence carries the cross-check detail when Verdict is
	// "Divergence" (backend=both only).
	Divergence *Divergence `json:"divergence,omitempty"`
}

// Divergence is the payload of a Divergence verdict: the two observable
// sets, their symmetric difference, and an operational trace witness for
// one outcome the axiomatic model forbids.
type Divergence struct {
	// UhbObservable / OpsimObservable are the two backends' full
	// observable sets, sorted.
	UhbObservable   []string `json:"uhb_observable"`
	OpsimObservable []string `json:"opsim_observable"`
	// UhbOnly lists outcomes only the µhb model observes; OpsimOnly those
	// only the simulator reaches. At least one is non-empty.
	UhbOnly   []string `json:"uhb_only,omitempty"`
	OpsimOnly []string `json:"opsim_only,omitempty"`
	// WitnessOutcome is the opsim-only outcome Witness reaches; Witness
	// is the concrete interleaving (one action per line). Both are empty
	// when the divergence is uhb-only (an unreachable outcome has no
	// operational witness).
	WitnessOutcome string   `json:"witness_outcome,omitempty"`
	Witness        []string `json:"witness,omitempty"`
}

// TallyJSON is a verdict tally in wire form.
type TallyJSON struct {
	Bugs       int `json:"bugs"`
	Strict     int `json:"strict"`
	Equivalent int `json:"equivalent"`
	// Divergent counts backend=both cross-check disagreements (absent on
	// single-backend runs).
	Divergent     int `json:"divergent,omitempty"`
	Total         int `json:"total"`
	SpecifiedBugs int `json:"specified_bugs"`
}

// FamilyTally is one litmus family's tally within a stack.
type FamilyTally struct {
	Family string `json:"family"`
	TallyJSON
}

// StackSummary is one stack's aggregated result, mirroring
// core.SuiteResult: the overall tally plus per-family tallies in sorted
// family order (the same order the CSV reporter emits).
type StackSummary struct {
	Stack    string        `json:"stack"`
	Tally    TallyJSON     `json:"tally"`
	Families []FamilyTally `json:"families"`
	// OpsimSkipped carries the capability reason when backend=both could
	// not cross-check this stack's model (absent when it could, and on
	// single-backend runs).
	OpsimSkipped string `json:"opsim_skipped,omitempty"`
}

// SummaryRecord is the stream's terminal record: the running tallies of
// the progress tracker (done/total/bugs/strict/equivalent/cached) plus
// the per-stack aggregation. On an aborted sweep Done < Total and
// Stacks is empty.
type SummaryRecord struct {
	Type string `json:"type"` // "summary"
	// Trace is the request's trace ID (hex), matching every verdict
	// record of the same stream.
	Trace      string `json:"trace,omitempty"`
	Done       int    `json:"done"`
	Total      int    `json:"total"`
	Bugs       int    `json:"bugs"`
	Strict     int    `json:"strict"`
	Equivalent int    `json:"equivalent"`
	// Divergent counts Divergence verdicts (backend=both only; absent
	// otherwise).
	Divergent int `json:"divergent,omitempty"`
	Cached    int `json:"cached"`
	// Backend names the verdict engine when it is not the default uhb.
	Backend string `json:"backend,omitempty"`
	// ElapsedSeconds is first-to-last result wall time;
	// TestsPerSecond = Done / ElapsedSeconds (0 on a degenerate window).
	ElapsedSeconds float64        `json:"elapsed_seconds"`
	TestsPerSecond float64        `json:"tests_per_sec"`
	Stacks         []StackSummary `json:"stacks"`
	// Coverage is the engine ledger's totals at summary time — lifetime
	// engine state, not per-request (the shared memoizing engine makes a
	// per-request cut meaningless). The full per-(model, axiom) matrix
	// and verdict vectors live at GET /v1/coverage.
	Coverage CoverageTotals `json:"coverage"`
	// Fleet reports how a coordinator spread this sweep across its
	// workers (absent on single-node streams).
	Fleet *FleetSummary `json:"fleet,omitempty"`
}

// FleetSummary is the coordinator's per-sweep dispatch accounting,
// attached to a merged stream's terminal summary.
type FleetSummary struct {
	// Workers lists every worker that received at least one shard of the
	// sweep, in dispatch order.
	Workers []WorkerSummary `json:"workers"`
	// Hedges counts shard re-dispatches to a ring successor (slow or
	// dead worker); Deduped counts merged records dropped because a
	// hedged duplicate of the same (key, test, stack) already arrived.
	Hedges  int `json:"hedges,omitempty"`
	Deduped int `json:"deduped,omitempty"`
}

// WorkerSummary is one fleet worker's share of a merged sweep.
type WorkerSummary struct {
	// Worker is the worker's base URL.
	Worker string `json:"worker"`
	// Dispatched counts jobs assigned to this worker (hedged duplicates
	// included); Completed counts its records the merger accepted.
	Dispatched int `json:"dispatched"`
	Completed  int `json:"completed"`
	// Failed marks a worker whose sub-request errored mid-sweep (its
	// remaining jobs moved to a ring successor).
	Failed bool `json:"failed,omitempty"`
}

// ErrorRecord is the stream's terminal record when the sweep failed.
type ErrorRecord struct {
	Type  string `json:"type"` // "error"
	Error string `json:"error"`
}

// FieldError names one invalid request field and why it was rejected.
type FieldError struct {
	// Field is the JSON field name from VerifyRequest ("suite",
	// "backend", "models[1]", ...).
	Field   string `json:"field"`
	Message string `json:"message"`
}

// ErrorResponse is the JSON body of a 4xx response: a human-readable
// error plus the offending field(s) when the failure is attributable.
type ErrorResponse struct {
	Error  string       `json:"error"`
	Fields []FieldError `json:"fields,omitempty"`
}

// MemoStatsJSON is the engine memo cache's counter snapshot.
type MemoStatsJSON struct {
	Hits    uint64  `json:"hits"`
	Misses  uint64  `json:"misses"`
	Len     int     `json:"len"`
	Cap     int     `json:"cap"`
	HitRate float64 `json:"hit_rate"`
}

// IncrementalStatsJSON mirrors the tricheck_uhb_incremental_*_total
// counters in the stats payload, with the reuse ratio precomputed.
type IncrementalStatsJSON struct {
	Reuse      uint64  `json:"reuse"`
	Rebuild    uint64  `json:"rebuild"`
	ReuseRatio float64 `json:"reuse_ratio"`
}

// StatsRecord is the GET /v1/stats response.
type StatsRecord struct {
	UptimeSeconds    float64 `json:"uptime_seconds"`
	RequestsTotal    int64   `json:"requests_total"`
	RequestsInFlight int64   `json:"requests_inflight"`
	RequestErrors    int64   `json:"request_errors"`
	// RequestCancels counts requests aborted by client disconnect or
	// context cancellation — the supported abort flow, kept separate
	// from RequestErrors so the error counter stays alertable.
	RequestCancels   int64 `json:"requests_cancelled"`
	VerdictsStreamed int64 `json:"verdicts_streamed"`
	// TestsPerSecond is the cumulative streaming rate: verdicts streamed
	// over the wall-clock seconds requests spent sweeping.
	TestsPerSecond float64 `json:"tests_per_sec"`
	// JobsExecuted counts actual verifier executions (neither memoized
	// nor deduplicated) over the server's lifetime.
	JobsExecuted uint64 `json:"jobs_executed"`
	// Divergences counts backend=both cross-check disagreements over the
	// server's lifetime (absent while zero).
	Divergences uint64         `json:"divergences,omitempty"`
	Memo        *MemoStatsJSON `json:"memo,omitempty"`
	// Incremental reports the µhb incremental-acyclicity engine's
	// effectiveness: how often the per-candidate verdict reused the
	// maintained topological order vs. rebuilt it from scratch.
	Incremental *IncrementalStatsJSON `json:"incremental,omitempty"`
	// Fleet reports coordinator-mode dispatch counters (absent on plain
	// workers).
	Fleet *FleetStatsJSON `json:"fleet,omitempty"`
}

// WorkerStatsJSON is one fleet worker's lifetime counters on the
// coordinator.
type WorkerStatsJSON struct {
	URL     string `json:"url"`
	Healthy bool   `json:"healthy"`
	// Dispatched/Completed count jobs sent to and records merged from
	// this worker; Hedged counts shards re-dispatched away from it;
	// Retried counts jobs re-assigned to it from a failed peer.
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	Hedged     uint64 `json:"hedged"`
	Retried    uint64 `json:"retried"`
}

// FleetStatsJSON is the coordinator's /v1/stats block: ring membership,
// health, and lifetime dispatch counters.
type FleetStatsJSON struct {
	Workers int `json:"workers"`
	Healthy int `json:"healthy"`
	// Sweeps counts merged fleet sweeps; Hedges/Deduped/Rebalances the
	// lifetime hedge re-dispatches, duplicate records dropped by the
	// merger, and memo-slice rebalance pushes.
	Sweeps     int64             `json:"sweeps"`
	Hedges     uint64            `json:"hedges"`
	Deduped    uint64            `json:"deduped"`
	Rebalances uint64            `json:"rebalances"`
	PerWorker  []WorkerStatsJSON `json:"per_worker,omitempty"`
}

// The /v1/coverage shapes mirror internal/cover's deterministic JSON
// snapshot field for field (locked by the golden test), so wire
// consumers never import engine internals.

// AxiomRow is one axiom's coverage counters within a model matrix.
type AxiomRow struct {
	Axiom  string `json:"axiom"`
	Fired  uint64 `json:"fired"`
	Edges  uint64 `json:"edges"`
	Cycles uint64 `json:"cycles"`
}

// ModelMatrix is one model's per-axiom coverage and verdict counts.
type ModelMatrix struct {
	Model    string            `json:"model"`
	Jobs     uint64            `json:"jobs"`
	Verdicts map[string]uint64 `json:"verdicts,omitempty"`
	Axioms   []AxiomRow        `json:"axioms"`
}

// VectorRecord is one (test, stack) verdict vector entry.
type VectorRecord struct {
	Test    string `json:"test"`
	Stack   string `json:"stack"`
	Verdict string `json:"verdict"`
}

// CoverageTotals is a coverage ledger's summary line.
type CoverageTotals struct {
	Models       int    `json:"models"`
	Jobs         uint64 `json:"jobs"`
	AxiomsFired  int    `json:"axioms_fired"`
	AxiomsEdged  int    `json:"axioms_edged"`
	AxiomsCycled int    `json:"axioms_cycled"`
	Vectors      int    `json:"vectors"`
}

// CoverageSnapshot is the GET /v1/coverage response: the per-(model,
// axiom) fired/edges/cycles matrix, the (test, config) verdict vectors,
// and the totals.
type CoverageSnapshot struct {
	Axioms  []string       `json:"axioms"`
	Models  []ModelMatrix  `json:"models"`
	Vectors []VectorRecord `json:"vectors,omitempty"`
	Totals  CoverageTotals `json:"totals"`
}
