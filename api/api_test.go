package api

import (
	"encoding/json"
	"testing"
)

// The golden test locks JSON byte-compatibility: a record with none of
// the fields introduced alongside the backend axis must encode to
// exactly the bytes the pre-api-package server emitted (field order and
// all), so existing stream consumers and recorded fixtures keep working.

func mustMarshal(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func TestGoldenVerdictRecord(t *testing.T) {
	got := mustMarshal(t, VerdictRecord{
		Type: "verdict", Trace: "deadbeef", Done: 3, Total: 162,
		Test: "mp[rlx,rel,acq,rlx]", Stack: "riscv-base-intuitive+TSO/riscv-curr",
		Verdict: "Equivalent", Key: "abc+def", Cached: true,
	})
	want := `{"type":"verdict","trace":"deadbeef","done":3,"total":162,` +
		`"test":"mp[rlx,rel,acq,rlx]","stack":"riscv-base-intuitive+TSO/riscv-curr",` +
		`"verdict":"Equivalent","key":"abc+def","cached":true}`
	if got != want {
		t.Errorf("verdict record bytes changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenSummaryRecord(t *testing.T) {
	got := mustMarshal(t, SummaryRecord{
		Type: "summary", Trace: "deadbeef", Done: 162, Total: 162,
		Bugs: 5, Strict: 7, Equivalent: 150, Cached: 81,
		ElapsedSeconds: 1.5, TestsPerSecond: 108,
		Stacks: []StackSummary{{
			Stack: "riscv-base-intuitive+TSO/riscv-curr",
			Tally: TallyJSON{Bugs: 5, Strict: 7, Equivalent: 150, Total: 162, SpecifiedBugs: 2},
			Families: []FamilyTally{{
				Family:    "mp",
				TallyJSON: TallyJSON{Equivalent: 81, Total: 81},
			}},
		}},
		Coverage: CoverageTotals{Models: 1, Jobs: 162, AxiomsFired: 9, AxiomsEdged: 8, AxiomsCycled: 4, Vectors: 162},
	})
	want := `{"type":"summary","trace":"deadbeef","done":162,"total":162,` +
		`"bugs":5,"strict":7,"equivalent":150,"cached":81,` +
		`"elapsed_seconds":1.5,"tests_per_sec":108,` +
		`"stacks":[{"stack":"riscv-base-intuitive+TSO/riscv-curr",` +
		`"tally":{"bugs":5,"strict":7,"equivalent":150,"total":162,"specified_bugs":2},` +
		`"families":[{"family":"mp","bugs":0,"strict":0,"equivalent":81,"total":81,"specified_bugs":0}]}],` +
		`"coverage":{"models":1,"jobs":162,"axioms_fired":9,"axioms_edged":8,"axioms_cycled":4,"vectors":162}}`
	if got != want {
		t.Errorf("summary record bytes changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenStatsRecord(t *testing.T) {
	got := mustMarshal(t, StatsRecord{
		UptimeSeconds: 10, RequestsTotal: 4, RequestsInFlight: 1,
		RequestErrors: 0, RequestCancels: 1, VerdictsStreamed: 648,
		TestsPerSecond: 64.8, JobsExecuted: 324,
		Memo:        &MemoStatsJSON{Hits: 324, Misses: 324, Len: 324, Cap: 262144, HitRate: 0.5},
		Incremental: &IncrementalStatsJSON{Reuse: 90, Rebuild: 10, ReuseRatio: 0.9},
	})
	want := `{"uptime_seconds":10,"requests_total":4,"requests_inflight":1,` +
		`"request_errors":0,"requests_cancelled":1,"verdicts_streamed":648,` +
		`"tests_per_sec":64.8,"jobs_executed":324,` +
		`"memo":{"hits":324,"misses":324,"len":324,"cap":262144,"hit_rate":0.5},` +
		`"incremental":{"reuse":90,"rebuild":10,"reuse_ratio":0.9}}`
	if got != want {
		t.Errorf("stats record bytes changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenErrorRecord(t *testing.T) {
	got := mustMarshal(t, ErrorRecord{Type: "error", Error: "boom"})
	if want := `{"type":"error","error":"boom"}`; got != want {
		t.Errorf("error record bytes changed:\n got %s\nwant %s", got, want)
	}
}

func TestGoldenCoverageSnapshot(t *testing.T) {
	got := mustMarshal(t, CoverageSnapshot{
		Axioms: []string{"PO_Fetch"},
		Models: []ModelMatrix{{
			Model:    "TSO/riscv-curr",
			Jobs:     2,
			Verdicts: map[string]uint64{"Equivalent": 2},
			Axioms:   []AxiomRow{{Axiom: "PO_Fetch", Fired: 2, Edges: 2, Cycles: 1}},
		}},
		Vectors: []VectorRecord{{Test: "mp[rlx,rel,acq,rlx]", Stack: "riscv-base-intuitive+TSO/riscv-curr", Verdict: "Equivalent"}},
		Totals:  CoverageTotals{Models: 1, Jobs: 2, AxiomsFired: 1, AxiomsEdged: 1, AxiomsCycled: 1, Vectors: 1},
	})
	want := `{"axioms":["PO_Fetch"],` +
		`"models":[{"model":"TSO/riscv-curr","jobs":2,"verdicts":{"Equivalent":2},` +
		`"axioms":[{"axiom":"PO_Fetch","fired":2,"edges":2,"cycles":1}]}],` +
		`"vectors":[{"test":"mp[rlx,rel,acq,rlx]","stack":"riscv-base-intuitive+TSO/riscv-curr","verdict":"Equivalent"}],` +
		`"totals":{"models":1,"jobs":2,"axioms_fired":1,"axioms_edged":1,"axioms_cycled":1,"vectors":1}}`
	if got != want {
		t.Errorf("coverage snapshot bytes changed:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenVerifyRequest: the request encoding, uhb default omitted.
func TestGoldenVerifyRequest(t *testing.T) {
	got := mustMarshal(t, VerifyRequest{Family: "mp", ISA: "base", Variant: "curr", Workers: 4})
	if want := `{"family":"mp","isa":"base","variant":"curr","workers":4}`; got != want {
		t.Errorf("verify request bytes changed:\n got %s\nwant %s", got, want)
	}
}

// TestDivergencePayload pins the new divergence record schema (additive,
// so it only appears on backend=both streams).
func TestDivergencePayload(t *testing.T) {
	got := mustMarshal(t, VerdictRecord{
		Type: "verdict", Done: 1, Total: 1, Test: "sb[rlx,rlx,rlx,rlx]",
		Stack: "riscv-base-intuitive+SC/riscv-curr", Verdict: "Divergence",
		Key: "abc+def+both", Backend: "both",
		Divergence: &Divergence{
			UhbObservable:   []string{"a=0; b=1", "a=1; b=0", "a=1; b=1"},
			OpsimObservable: []string{"a=0; b=0", "a=0; b=1", "a=1; b=0", "a=1; b=1"},
			OpsimOnly:       []string{"a=0; b=0"},
			WitnessOutcome:  "a=0; b=0",
			Witness:         []string{"T0: execute instruction 0", "T1: execute instruction 0"},
		},
	})
	want := `{"type":"verdict","done":1,"total":1,"test":"sb[rlx,rlx,rlx,rlx]",` +
		`"stack":"riscv-base-intuitive+SC/riscv-curr","verdict":"Divergence",` +
		`"key":"abc+def+both","cached":false,"backend":"both",` +
		`"divergence":{"uhb_observable":["a=0; b=1","a=1; b=0","a=1; b=1"],` +
		`"opsim_observable":["a=0; b=0","a=0; b=1","a=1; b=0","a=1; b=1"],` +
		`"opsim_only":["a=0; b=0"],"witness_outcome":"a=0; b=0",` +
		`"witness":["T0: execute instruction 0","T1: execute instruction 0"]}}`
	if got != want {
		t.Errorf("divergence payload bytes changed:\n got %s\nwant %s", got, want)
	}
}

// TestGoldenFleetFields pins the coordinator-mode additions: a sharded
// sub-request with a key allowlist, a merged record's worker/specified
// annotations, and the summary's fleet block. All additive omitempty
// fields — the goldens above prove their absence is byte-invisible.
func TestGoldenFleetFields(t *testing.T) {
	got := mustMarshal(t, VerifyRequest{Family: "mp", ISA: "base", Keys: []string{"abc+def", "abc+fed"}})
	if want := `{"family":"mp","isa":"base","keys":["abc+def","abc+fed"]}`; got != want {
		t.Errorf("sharded request bytes changed:\n got %s\nwant %s", got, want)
	}

	got = mustMarshal(t, VerdictRecord{
		Type: "verdict", Done: 1, Total: 2, Test: "mp[rlx,rel,acq,rlx]",
		Stack: "riscv-base-intuitive+TSO/riscv-curr", Verdict: "Bug",
		Key: "abc+def", SpecifiedBug: true, Worker: "http://w1:8321",
	})
	want := `{"type":"verdict","done":1,"total":2,"test":"mp[rlx,rel,acq,rlx]",` +
		`"stack":"riscv-base-intuitive+TSO/riscv-curr","verdict":"Bug",` +
		`"key":"abc+def","cached":false,"specified_bug":true,"worker":"http://w1:8321"}`
	if got != want {
		t.Errorf("merged verdict record bytes changed:\n got %s\nwant %s", got, want)
	}

	got = mustMarshal(t, FleetSummary{
		Workers: []WorkerSummary{
			{Worker: "http://w1:8321", Dispatched: 81, Completed: 81},
			{Worker: "http://w2:8321", Dispatched: 81, Completed: 40, Failed: true},
		},
		Hedges:  1,
		Deduped: 3,
	})
	want = `{"workers":[{"worker":"http://w1:8321","dispatched":81,"completed":81},` +
		`{"worker":"http://w2:8321","dispatched":81,"completed":40,"failed":true}],` +
		`"hedges":1,"deduped":3}`
	if got != want {
		t.Errorf("fleet summary bytes changed:\n got %s\nwant %s", got, want)
	}

	got = mustMarshal(t, FleetStatsJSON{
		Workers: 3, Healthy: 2, Sweeps: 4, Hedges: 1, Rebalances: 2,
		PerWorker: []WorkerStatsJSON{{URL: "http://w1:8321", Healthy: true, Dispatched: 162, Completed: 162}},
	})
	want = `{"workers":3,"healthy":2,"sweeps":4,"hedges":1,"deduped":0,"rebalances":2,` +
		`"per_worker":[{"url":"http://w1:8321","healthy":true,"dispatched":162,"completed":162,"hedged":0,"retried":0}]}`
	if got != want {
		t.Errorf("fleet stats bytes changed:\n got %s\nwant %s", got, want)
	}
}

// TestErrorResponse pins the structured 400 body.
func TestErrorResponse(t *testing.T) {
	got := mustMarshal(t, ErrorResponse{
		Error:  `unknown backend "axiomatic" (want uhb, opsim or both)`,
		Fields: []FieldError{{Field: "backend", Message: `unknown backend "axiomatic" (want uhb, opsim or both)`}},
	})
	want := `{"error":"unknown backend \"axiomatic\" (want uhb, opsim or both)",` +
		`"fields":[{"field":"backend","message":"unknown backend \"axiomatic\" (want uhb, opsim or both)"}]}`
	if got != want {
		t.Errorf("error response bytes changed:\n got %s\nwant %s", got, want)
	}
}
