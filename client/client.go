// Package client is the Go client of tricheckd, the TriCheck streaming
// verification service. It speaks the NDJSON protocol of POST
// /v1/verify — per-(test, stack) verdict records in farm completion
// order, terminated by a summary record — and the /v1/stats counters.
//
// The wire types come from the versioned tricheck/api package, which the
// server imports too, so the client cannot drift from the service
// schema — and this package depends only on the public wire contract,
// never on server internals:
//
//	c := client.New("http://127.0.0.1:8321")
//	sum, err := c.Verify(ctx, client.Request{Family: "mp"}, func(v client.Verdict) error {
//		fmt.Printf("%s on %s: %s\n", v.Test, v.Stack, v.Verdict)
//		return nil
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"

	"tricheck/api"
)

// Wire types, aliased from the versioned api package.
type (
	// Request is the /v1/verify request body.
	Request = api.VerifyRequest
	// Verdict is one streamed (test, stack) verdict record.
	Verdict = api.VerdictRecord
	// Divergence is the cross-check payload of a "Divergence" verdict
	// (backend=both).
	Divergence = api.Divergence
	// Summary is the stream's terminal summary record.
	Summary = api.SummaryRecord
	// Stats is the /v1/stats response.
	Stats = api.StatsRecord
	// Coverage is the /v1/coverage response: the engine's
	// verification-coverage ledger snapshot.
	Coverage = api.CoverageSnapshot
)

// Client talks to one tricheckd instance.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient overrides http.DefaultClient when non-nil.
	HTTPClient *http.Client
}

// New returns a Client for the service at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// Verify streams a verification sweep. Every verdict record is passed
// to onVerdict (which may be nil) as it arrives; a non-nil error from
// onVerdict aborts the stream — the server sees the disconnect and
// stops scheduling the sweep's remaining jobs. The terminal summary is
// returned; a server-side error record or a truncated stream is an
// error.
func (c *Client) Verify(ctx context.Context, req Request, onVerdict func(Verdict) error) (*Summary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// 4xx bodies are structured (api.ErrorResponse); surface the
		// offending fields when the server names them.
		var er api.ErrorResponse
		if json.Unmarshal(msg, &er) == nil && er.Error != "" {
			if len(er.Fields) > 0 {
				fields := make([]string, len(er.Fields))
				for i, f := range er.Fields {
					fields[i] = f.Field
				}
				return nil, fmt.Errorf("client: %s: %s (field %s)", resp.Status, er.Error, strings.Join(fields, ", "))
			}
			return nil, fmt.Errorf("client: %s: %s", resp.Status, er.Error)
		}
		return nil, fmt.Errorf("client: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // summary records can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: bad stream record: %w", err)
		}
		switch probe.Type {
		case "verdict":
			if onVerdict == nil {
				continue
			}
			var v Verdict
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("client: bad verdict record: %w", err)
			}
			if err := onVerdict(v); err != nil {
				return nil, err
			}
		case "summary":
			var sum Summary
			if err := json.Unmarshal(line, &sum); err != nil {
				return nil, fmt.Errorf("client: bad summary record: %w", err)
			}
			return &sum, nil
		case "error":
			var rec api.ErrorRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("client: bad error record: %w", err)
			}
			return nil, fmt.Errorf("client: server aborted sweep: %s", rec.Error)
		default:
			return nil, fmt.Errorf("client: unknown stream record type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a summary record")
}

// CoverageSnapshot fetches the engine's verification-coverage ledger.
// withVectors controls whether the (test, config) verdict vectors — the
// bulk of the payload after large sweeps — are included (?vectors=0).
func (c *Client) CoverageSnapshot(ctx context.Context, withVectors bool) (*Coverage, error) {
	url := c.BaseURL + "/v1/coverage"
	if !withVectors {
		url += "?vectors=0"
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s", resp.Status)
	}
	var snap Coverage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("client: decoding coverage: %w", err)
	}
	return &snap, nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decoding stats: %w", err)
	}
	return &st, nil
}
