// Package client is the Go client of tricheckd, the TriCheck streaming
// verification service. It speaks the NDJSON protocol of POST
// /v1/verify — per-(test, stack) verdict records in farm completion
// order, terminated by a summary record — and the /v1/stats counters.
//
// The wire types come from the versioned tricheck/api package, which the
// server imports too, so the client cannot drift from the service
// schema — and this package depends only on the public wire contract,
// never on server internals:
//
//	c := client.New("http://127.0.0.1:8321")
//	sum, err := c.Verify(ctx, client.Request{Family: "mp"}, func(v client.Verdict) error {
//		fmt.Printf("%s on %s: %s\n", v.Test, v.Stack, v.Verdict)
//		return nil
//	})
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strings"
	"time"

	"tricheck/api"
)

// Wire types, aliased from the versioned api package.
type (
	// Request is the /v1/verify request body.
	Request = api.VerifyRequest
	// Verdict is one streamed (test, stack) verdict record.
	Verdict = api.VerdictRecord
	// Divergence is the cross-check payload of a "Divergence" verdict
	// (backend=both).
	Divergence = api.Divergence
	// Summary is the stream's terminal summary record.
	Summary = api.SummaryRecord
	// Stats is the /v1/stats response.
	Stats = api.StatsRecord
	// Coverage is the /v1/coverage response: the engine's
	// verification-coverage ledger snapshot.
	Coverage = api.CoverageSnapshot
)

// sharedTransport is the pooled transport every Client without an
// explicit HTTPClient uses. Fleet coordinators issue one sub-request per
// worker per sweep round; keeping idle connections per host means a
// hedge or a retry reuses a warm TCP connection instead of paying a new
// handshake on the latency-critical path.
var sharedTransport = &http.Transport{
	Proxy:               http.ProxyFromEnvironment,
	MaxIdleConns:        64,
	MaxIdleConnsPerHost: 16,
	IdleConnTimeout:     90 * time.Second,
}

// sharedHTTPClient wraps sharedTransport with no global timeout: verify
// streams are long-lived by design, so deadlines belong to the caller's
// context.
var sharedHTTPClient = &http.Client{Transport: sharedTransport}

// Retry defaults; see Client.
const (
	defaultMaxRetries = 3
	defaultRetryBase  = 100 * time.Millisecond
	defaultRetryCap   = 2 * time.Second
)

// Client talks to one tricheckd instance.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8321".
	BaseURL string
	// HTTPClient overrides the shared pooled client when non-nil.
	HTTPClient *http.Client

	// MaxRetries bounds transparent retries of transient failures —
	// connection errors and 5xx responses received before a stream
	// starts. 0 means the default (3); negative disables retries.
	// Requests that reached the server and began streaming are never
	// retried (the fleet's hedging layer owns mid-stream recovery), and
	// 4xx responses are terminal.
	MaxRetries int
	// RetryBase and RetryCap shape the capped exponential backoff: sleep
	// k is a uniformly-jittered duration in (0, min(RetryCap,
	// RetryBase<<k)]. Zero values take the defaults (100ms, 2s).
	RetryBase, RetryCap time.Duration
}

// New returns a Client for the service at baseURL.
func New(baseURL string) *Client { return &Client{BaseURL: baseURL} }

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return sharedHTTPClient
}

// retries resolves the MaxRetries convention.
func (c *Client) retries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return defaultMaxRetries
	default:
		return c.MaxRetries
	}
}

// backoff returns the jittered sleep before retry attempt k (0-based).
func (c *Client) backoff(k int) time.Duration {
	base, cap := c.RetryBase, c.RetryCap
	if base <= 0 {
		base = defaultRetryBase
	}
	if cap <= 0 {
		cap = defaultRetryCap
	}
	d := base << k
	if d > cap || d <= 0 {
		d = cap
	}
	// Full jitter: desynchronizes a fleet of clients retrying the same
	// restarted worker.
	return time.Duration(rand.Int63n(int64(d))) + 1
}

// do issues req, transparently retrying transient failures: transport
// errors and 5xx statuses. Non-5xx responses are returned as-is (the
// caller owns the body); retried 5xx bodies are drained and closed so
// the pooled connection is reused. req must carry a rewindable body
// (GetBody non-nil) or none.
func (c *Client) do(req *http.Request) (*http.Response, error) {
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if req.GetBody != nil {
				body, err := req.GetBody()
				if err != nil {
					return nil, lastErr
				}
				req.Body = body
			}
			select {
			case <-req.Context().Done():
				return nil, lastErr
			case <-time.After(c.backoff(attempt - 1)):
			}
		}
		resp, err := c.http().Do(req)
		switch {
		case err != nil:
			// A cancelled context is the caller giving up, not a flaky
			// worker — propagate immediately.
			if req.Context().Err() != nil {
				return nil, err
			}
			lastErr = err
		case resp.StatusCode >= 500:
			io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
			resp.Body.Close()
			lastErr = fmt.Errorf("client: %s: %s", req.URL.Path, resp.Status)
		default:
			return resp, nil
		}
		if attempt >= c.retries() {
			return nil, lastErr
		}
	}
}

// Verify streams a verification sweep. Every verdict record is passed
// to onVerdict (which may be nil) as it arrives; a non-nil error from
// onVerdict aborts the stream — the server sees the disconnect and
// stops scheduling the sweep's remaining jobs. The terminal summary is
// returned; a server-side error record or a truncated stream is an
// error.
func (c *Client) Verify(ctx context.Context, req Request, onVerdict func(Verdict) error) (*Summary, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("client: encoding request: %w", err)
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		// 4xx bodies are structured (api.ErrorResponse); surface the
		// offending fields when the server names them.
		var er api.ErrorResponse
		if json.Unmarshal(msg, &er) == nil && er.Error != "" {
			if len(er.Fields) > 0 {
				fields := make([]string, len(er.Fields))
				for i, f := range er.Fields {
					fields[i] = f.Field
				}
				return nil, fmt.Errorf("client: %s: %s (field %s)", resp.Status, er.Error, strings.Join(fields, ", "))
			}
			return nil, fmt.Errorf("client: %s: %s", resp.Status, er.Error)
		}
		return nil, fmt.Errorf("client: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}

	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 64<<20) // summary records can be large
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var probe struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("client: bad stream record: %w", err)
		}
		switch probe.Type {
		case "verdict":
			if onVerdict == nil {
				continue
			}
			var v Verdict
			if err := json.Unmarshal(line, &v); err != nil {
				return nil, fmt.Errorf("client: bad verdict record: %w", err)
			}
			if err := onVerdict(v); err != nil {
				return nil, err
			}
		case "summary":
			var sum Summary
			if err := json.Unmarshal(line, &sum); err != nil {
				return nil, fmt.Errorf("client: bad summary record: %w", err)
			}
			return &sum, nil
		case "error":
			var rec api.ErrorRecord
			if err := json.Unmarshal(line, &rec); err != nil {
				return nil, fmt.Errorf("client: bad error record: %w", err)
			}
			return nil, fmt.Errorf("client: server aborted sweep: %s", rec.Error)
		default:
			return nil, fmt.Errorf("client: unknown stream record type %q", probe.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("client: reading stream: %w", err)
	}
	return nil, fmt.Errorf("client: stream ended without a summary record")
}

// CoverageSnapshot fetches the engine's verification-coverage ledger.
// withVectors controls whether the (test, config) verdict vectors — the
// bulk of the payload after large sweeps — are included (?vectors=0).
func (c *Client) CoverageSnapshot(ctx context.Context, withVectors bool) (*Coverage, error) {
	url := c.BaseURL + "/v1/coverage"
	if !withVectors {
		url += "?vectors=0"
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s", resp.Status)
	}
	var snap Coverage
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("client: decoding coverage: %w", err)
	}
	return &snap, nil
}

// Stats fetches the service counters.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/stats", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("client: %s", resp.Status)
	}
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("client: decoding stats: %w", err)
	}
	return &st, nil
}

// Healthz probes GET /healthz with a single attempt — no retries, so a
// fleet coordinator's liveness verdict is prompt rather than masked by
// backoff.
func (c *Client) Healthz(ctx context.Context) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(hreq)
	if err != nil {
		return err
	}
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("client: healthz: %s", resp.Status)
	}
	return nil
}

// MemoSnapshot fetches the worker's memo-cache snapshot (GET
// /v1/memo/snapshot) in the farm snapshot envelope. When owner and ring
// are given the worker returns only the slice consistent-hash-owned by
// owner under that ring (vnodes — 0 for the server default — must match
// the coordinator's ring for the slice to line up with dispatch
// ownership); with owner empty the full cache is returned.
func (c *Client) MemoSnapshot(ctx context.Context, owner string, ring []string, vnodes int) ([]byte, error) {
	u := c.BaseURL + "/v1/memo/snapshot"
	if owner != "" {
		q := url.Values{}
		q.Set("owner", owner)
		q.Set("ring", strings.Join(ring, ","))
		if vnodes > 0 {
			q.Set("vnodes", fmt.Sprint(vnodes))
		}
		u += "?" + q.Encode()
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("client: memo snapshot: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return io.ReadAll(resp.Body)
}

// MemoLoad merges snapshot bytes (from MemoSnapshot or a snapshot file)
// into the worker's memo cache via POST /v1/memo/load — the push half
// of the fleet's warm-start rebalance.
func (c *Client) MemoLoad(ctx context.Context, snapshot []byte) error {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/memo/load", bytes.NewReader(snapshot))
	if err != nil {
		return err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.do(hreq)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("client: memo load: %s: %s", resp.Status, bytes.TrimSpace(msg))
	}
	return nil
}
