package client

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"tricheck/api"
)

// fastRetries makes backoff negligible so the tests exercise the retry
// logic, not the clock.
func fastRetries(c *Client) *Client {
	c.RetryBase = time.Millisecond
	c.RetryCap = 2 * time.Millisecond
	return c
}

// flaky serves failures for the first n requests, then delegates.
func flaky(n int64, status int, next http.Handler) (http.Handler, *atomic.Int64) {
	var calls atomic.Int64
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= n {
			http.Error(w, "worker restarting", status)
			return
		}
		next.ServeHTTP(w, r)
	}), &calls
}

func TestRetryRecoversFrom5xx(t *testing.T) {
	okStats := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.StatsRecord{RequestsTotal: 7})
	})
	h, calls := flaky(2, http.StatusServiceUnavailable, okStats)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastRetries(New(ts.URL))
	st, err := c.Stats(context.Background())
	if err != nil {
		t.Fatalf("Stats after transient 503s: %v", err)
	}
	if st.RequestsTotal != 7 {
		t.Fatalf("got RequestsTotal=%d, want 7", st.RequestsTotal)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (two 503s + success)", got)
	}
}

func TestRetryVerifyResendsBody(t *testing.T) {
	// The POST body must be rewound for each attempt: the success handler
	// checks it still decodes to the original request.
	ok := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var req api.VerifyRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Family != "mp" {
			http.Error(w, fmt.Sprintf("body did not survive retry: %v %+v", err, req), http.StatusBadRequest)
			return
		}
		fmt.Fprintln(w, `{"type":"summary","done":1,"total":1,"bugs":0,"strict":0,"equivalent":1,"cached":0,"elapsed_seconds":0,"tests_per_sec":0,"stacks":[],"coverage":{"models":0,"jobs":0,"axioms_fired":0,"axioms_edged":0,"axioms_cycled":0,"vectors":0}}`)
	})
	h, calls := flaky(1, http.StatusBadGateway, ok)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastRetries(New(ts.URL))
	sum, err := c.Verify(context.Background(), Request{Family: "mp"}, nil)
	if err != nil {
		t.Fatalf("Verify after transient 502: %v", err)
	}
	if sum.Equivalent != 1 {
		t.Fatalf("summary = %+v, want equivalent=1", sum)
	}
	if got := calls.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	h, calls := flaky(1<<30, http.StatusInternalServerError, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastRetries(New(ts.URL))
	c.MaxRetries = 2
	_, err := c.Stats(context.Background())
	if err == nil {
		t.Fatal("Stats against an always-500 server succeeded")
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + MaxRetries)", got)
	}
}

func TestRetryDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(api.ErrorResponse{Error: "unknown family"})
	}))
	defer ts.Close()

	c := fastRetries(New(ts.URL))
	_, err := c.Verify(context.Background(), Request{Family: "nope"}, nil)
	if err == nil {
		t.Fatal("Verify of a rejected request succeeded")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (4xx is terminal)", got)
	}
}

func TestRetryDisabled(t *testing.T) {
	h, calls := flaky(1<<30, http.StatusInternalServerError, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := fastRetries(New(ts.URL))
	c.MaxRetries = -1
	if _, err := c.Stats(context.Background()); err == nil {
		t.Fatal("Stats succeeded against an always-500 server")
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 with retries disabled", got)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	h, calls := flaky(1<<30, http.StatusServiceUnavailable, nil)
	ts := httptest.NewServer(h)
	defer ts.Close()

	c := New(ts.URL)
	c.RetryBase = time.Hour // the cancel must win, not the backoff
	c.RetryCap = time.Hour
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Stats(ctx)
		done <- err
	}()
	// Let the first attempt land, then cancel during the backoff sleep.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Stats returned nil error after cancel")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("retry loop ignored context cancellation")
	}
}
