package client_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"tricheck"
	"tricheck/client"
	"tricheck/internal/server"
)

// newService boots a tricheckd handler on a loopback httptest port and
// returns the server plus a client pointed at it.
func newService(t *testing.T, cfg server.Config) (*server.Server, *client.Client) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, client.New(ts.URL)
}

// TestStreamedSweepMatchesInProcessSweep is the end-to-end acceptance
// test: a family sweep through HTTP yields exactly the verdicts,
// tallies and memo fingerprints of an in-process Engine.Sweep — and
// after a cache-flushing restart, a repeat request is served with zero
// verifier executions.
func TestStreamedSweepMatchesInProcessSweep(t *testing.T) {
	tests := tricheck.MP.Generate()
	stacks, err := tricheck.SelectStacks("base", "both")
	if err != nil {
		t.Fatal(err)
	}
	total := len(tests) * len(stacks)

	// In-process reference sweep.
	ref, err := tricheck.NewEngine().Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdict := map[string]string{}
	wantKeys := map[string]bool{}
	for _, sr := range ref {
		for _, r := range sr.Results {
			wantVerdict[r.Test.Name+"|"+r.Stack.Name()] = r.Verdict.String()
		}
	}
	for _, s := range stacks {
		for _, tst := range tests {
			wantKeys[tricheck.JobKey(tst, s)] = true
		}
	}

	cachePath := filepath.Join(t.TempDir(), "memo.json")
	srv, c := newService(t, server.Config{CachePath: cachePath})

	req := client.Request{Family: "mp", ISA: "base", Variant: "both"}
	var verdicts []client.Verdict
	sum, err := c.Verify(context.Background(), req, func(v client.Verdict) error {
		verdicts = append(verdicts, v)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same verdicts, delivered exactly once each.
	if len(verdicts) != total {
		t.Fatalf("streamed %d verdicts, want %d", len(verdicts), total)
	}
	seen := map[string]bool{}
	for _, v := range verdicts {
		k := v.Test + "|" + v.Stack
		if seen[k] {
			t.Fatalf("verdict for %s delivered twice", k)
		}
		seen[k] = true
		if want, ok := wantVerdict[k]; !ok || v.Verdict != want {
			t.Fatalf("%s: verdict %q over HTTP, want %q", k, v.Verdict, want)
		}
		if !wantKeys[v.Key] {
			t.Fatalf("%s: streamed memo fingerprint %q is not a JobKey of the sweep", k, v.Key)
		}
	}

	// Same tallies, stack for stack and family for family.
	if sum.Done != total || sum.Total != total || len(sum.Stacks) != len(ref) {
		t.Fatalf("summary %+v, want done=total=%d over %d stacks", sum, total, len(ref))
	}
	for i, sr := range ref {
		got := sum.Stacks[i]
		if got.Stack != sr.Stack.Name() {
			t.Fatalf("summary stack %d = %q, want %q (order must match SelectStacks)", i, got.Stack, sr.Stack.Name())
		}
		want := fmt.Sprintf("%d/%d/%d/%d/%d", sr.Tally.Bugs, sr.Tally.Strict, sr.Tally.Equivalent, sr.Tally.Total, sr.Tally.SpecifiedBugs)
		if have := fmt.Sprintf("%d/%d/%d/%d/%d", got.Tally.Bugs, got.Tally.Strict, got.Tally.Equivalent, got.Tally.Total, got.Tally.SpecifiedBugs); have != want {
			t.Fatalf("stack %s tally %s over HTTP, want %s", got.Stack, have, want)
		}
	}
	if sum.Bugs+sum.Strict+sum.Equivalent != total {
		t.Fatalf("summary verdict tallies %d+%d+%d don't cover %d", sum.Bugs, sum.Strict, sum.Equivalent, total)
	}

	// Warm restart: flush the snapshot, boot a fresh server on it, and
	// repeat the request — every verdict served from the cache, zero
	// verifier executions.
	if err := srv.SaveSnapshot(); err != nil {
		t.Fatal(err)
	}
	srv2, c2 := newService(t, server.Config{CachePath: cachePath})
	var cached, uncached int
	sum2, err := c2.Verify(context.Background(), req, func(v client.Verdict) error {
		if v.Cached {
			cached++
		} else {
			uncached++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if srv2.Engine().Executions() != 0 {
		t.Fatalf("warm restart executed %d verifier jobs, want 0", srv2.Engine().Executions())
	}
	if cached != total || uncached != 0 {
		t.Fatalf("warm restart: %d cached + %d uncached verdicts, want all %d cached", cached, uncached, total)
	}
	if sum2.Done != total || sum2.Cached != total {
		t.Fatalf("warm summary %+v, want done=cached=%d", sum2, total)
	}
	for i := range ref {
		if sum2.Stacks[i].Tally != sum.Stacks[i].Tally {
			t.Fatalf("warm tallies differ on stack %s", sum2.Stacks[i].Stack)
		}
	}

	// The service's own counters agree.
	st, err := c2.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if st.JobsExecuted != 0 || st.VerdictsStreamed != int64(total) || st.Memo == nil || st.Memo.Hits == 0 {
		t.Fatalf("warm server stats %+v", st)
	}
}

// TestInlineModelSpecMatchesInProcessSweep: posting a custom µspec
// model through the wire yields exactly the verdicts and memo
// fingerprints of an in-process sweep over the same spec — and the
// fingerprints are keyed by config, so the same request hits the warm
// cache no matter what the model is called.
func TestInlineModelSpecMatchesInProcessSweep(t *testing.T) {
	spec, err := tricheck.ParseModelSpec("uspec custom-rWM\nvariant ours\nrelax WR\nrelax WW\nforwarding\norder-same-addr-rr\nrespect-deps\n")
	if err != nil {
		t.Fatal(err)
	}
	model, err := tricheck.NewModel(*spec)
	if err != nil {
		t.Fatal(err)
	}
	stacks, err := tricheck.SelectStacksModels("base", []*tricheck.Model{model})
	if err != nil {
		t.Fatal(err)
	}
	tests := tricheck.CoRR.Generate()
	ref, err := tricheck.NewEngine().Sweep(tests, stacks, 0)
	if err != nil {
		t.Fatal(err)
	}
	wantVerdict := map[string]string{}
	for _, sr := range ref {
		for _, r := range sr.Results {
			wantVerdict[r.Test.Name+"|"+r.Stack.Name()] = r.Verdict.String()
		}
	}

	srv, c := newService(t, server.Config{})
	req := client.Request{Family: "corr", ISA: "base", Models: []string{spec.EmitSpec()}}
	got := 0
	sum, err := c.Verify(context.Background(), req, func(v client.Verdict) error {
		got++
		k := v.Test + "|" + v.Stack
		if want, ok := wantVerdict[k]; !ok || v.Verdict != want {
			return fmt.Errorf("%s: verdict %q over HTTP, want %q", k, v.Verdict, want)
		}
		if want := tricheck.JobKey(findTest(tests, v.Test), stacks[0]); v.Key != want {
			return fmt.Errorf("%s: memo fingerprint %q, want %q", k, v.Key, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(tests) || sum.Done != len(tests) {
		t.Fatalf("streamed %d verdicts, summary %+v; want %d", got, sum, len(tests))
	}

	// Renaming the model changes nothing semantic: the repeat request is
	// served entirely from the warm memo cache.
	renamed := *spec
	renamed.Name = "same-machine-other-name"
	execs := srv.Engine().Executions()
	cached := 0
	if _, err := c.Verify(context.Background(), client.Request{Family: "corr", ISA: "base", Models: []string{renamed.EmitSpec()}}, func(v client.Verdict) error {
		if v.Cached {
			cached++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if srv.Engine().Executions() != execs {
		t.Fatalf("renamed model re-executed %d jobs, want 0", srv.Engine().Executions()-execs)
	}
	if cached != len(tests) {
		t.Fatalf("renamed model: %d cached verdicts, want %d", cached, len(tests))
	}
}

func findTest(tests []*tricheck.Test, name string) *tricheck.Test {
	for _, t := range tests {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// TestCoverageEndpointMatchesInProcessLedger is the coverage e2e
// acceptance test: after identical sweeps, the ledger served by GET
// /v1/coverage is bit-for-bit the ledger of an in-process Engine — and
// a warm, all-memoized repeat sweep leaves it bit-for-bit unchanged
// while the discrimination vectors stay fully populated from cached
// verdicts.
func TestCoverageEndpointMatchesInProcessLedger(t *testing.T) {
	tests := tricheck.MP.Generate()
	stacks, err := tricheck.SelectStacks("base", "both")
	if err != nil {
		t.Fatal(err)
	}

	// In-process reference ledger.
	eng := tricheck.NewEngine()
	if _, err := eng.Sweep(tests, stacks, 0); err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(eng.Coverage().Snapshot())
	if err != nil {
		t.Fatal(err)
	}

	srv, c := newService(t, server.Config{})
	req := client.Request{Family: "mp", ISA: "base", Variant: "both"}
	sum, err := c.Verify(context.Background(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := c.CoverageSnapshot(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("HTTP coverage ledger differs from the in-process ledger:\nhttp: %s\nproc: %s", got, want)
	}

	// The NDJSON summary's coverage totals are the same ledger's totals.
	if sum.Coverage != snap.Totals {
		t.Fatalf("summary coverage totals %+v != ledger totals %+v", sum.Coverage, snap.Totals)
	}
	if sum.Coverage.Vectors != len(tests)*len(stacks) || sum.Coverage.AxiomsFired == 0 {
		t.Fatalf("degenerate summary coverage totals %+v", sum.Coverage)
	}

	// Warm all-memoized rerun: zero executions, and the ledger — matrix
	// untouched, vectors re-recorded from cached verdicts — is
	// byte-identical.
	execs := srv.Engine().Executions()
	if _, err := c.Verify(context.Background(), req, nil); err != nil {
		t.Fatal(err)
	}
	if srv.Engine().Executions() != execs {
		t.Fatalf("warm rerun executed %d jobs, want 0", srv.Engine().Executions()-execs)
	}
	warm, err := c.CoverageSnapshot(context.Background(), true)
	if err != nil {
		t.Fatal(err)
	}
	if wb, _ := json.Marshal(warm); string(wb) != string(want) {
		t.Fatalf("warm rerun changed the coverage ledger:\nwarm: %s\ncold: %s", wb, want)
	}

	// ?vectors=0 drops the vector payload but not the totals.
	lean, err := c.CoverageSnapshot(context.Background(), false)
	if err != nil {
		t.Fatal(err)
	}
	if len(lean.Vectors) != 0 || lean.Totals != snap.Totals {
		t.Fatalf("vectors=0 snapshot: %d vectors, totals %+v (want 0 vectors, totals %+v)", len(lean.Vectors), lean.Totals, snap.Totals)
	}
}

// TestVerifyCallbackAbort pins the client-side cancellation path: a
// callback error tears the stream down and surfaces as the Verify
// error.
func TestVerifyCallbackAbort(t *testing.T) {
	_, c := newService(t, server.Config{})
	boom := fmt.Errorf("enough")
	n := 0
	_, err := c.Verify(context.Background(), client.Request{Family: "corr", ISA: "base", Variant: "curr"}, func(client.Verdict) error {
		n++
		if n == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("err = %v, want the callback's", err)
	}
}

// TestVerifyServerError surfaces a 400 as a useful error.
func TestVerifyServerError(t *testing.T) {
	_, c := newService(t, server.Config{})
	_, err := c.Verify(context.Background(), client.Request{Family: "nope"}, nil)
	if err == nil {
		t.Fatal("want error for unknown family")
	}
}
