module tricheck

go 1.23
