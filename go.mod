module tricheck

go 1.24
