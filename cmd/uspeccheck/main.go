// Command uspeccheck compiles a litmus test with a chosen mapping and
// evaluates it on a chosen µspec microarchitecture model (toolflow steps
// 2–3 — the role of the Check tools in the paper), printing observable and
// unobservable final states, and optionally the compiled assembly and a
// µhb cycle/witness explanation.
//
// Usage:
//
//	uspeccheck -test 'wrc[rlx,rlx,rel,acq,rlx]' -mapping riscv-base-intuitive \
//	           -model nMM -variant curr [-model-file spec.uspec]
//	           [-asm] [-explain] [-dot outcome]
//
// -model resolves any builtin from the registry (Table 7 names plus
// PowerA9, PowerA9-ldld-fixed, TSO, SC, AlphaLike); -model-file loads a
// custom declarative model spec instead.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"tricheck"
	"tricheck/internal/compile"
	"tricheck/internal/core"
	"tricheck/internal/isa"
	"tricheck/internal/isa/power"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/litmus"
	"tricheck/internal/report"
	"tricheck/internal/uspec"
)

func main() {
	testName := flag.String("test", "wrc[rlx,rlx,rel,acq,rlx]", "variant, e.g. 'wrc[rlx,rlx,rel,acq,rlx]'")
	mappingName := flag.String("mapping", "riscv-base-intuitive", "compiler mapping name")
	modelName := flag.String("model", "nMM", "µspec model (WR, rWR, rWM, rMM, nWR, nMM, A9like, PowerA9, ...)")
	modelFile := flag.String("model-file", "", "load the µspec model from a spec file instead of -model")
	variantName := flag.String("variant", "curr", "MCM variant: curr or ours")
	asm := flag.Bool("asm", false, "print the compiled assembly")
	explain := flag.Bool("explain", false, "explain the interesting outcome (µhb witness or cycle)")
	witness := flag.Bool("witness", false, "print a µhb event timeline (or cycle) for the interesting outcome")
	dotFor := flag.String("dot", "", "emit a Graphviz µhb graph for the given outcome")
	flag.Parse()

	t, err := litmus.ParseVariantName(*testName)
	if err != nil {
		fail(err)
	}
	mapping := tricheck.MappingByName(*mappingName)
	if mapping == nil {
		fail(fmt.Errorf("unknown mapping %q", *mappingName))
	}
	var model *uspec.Model
	if *modelFile != "" {
		// Same exclusivity contract as tricheck/trisynth/tricheckd: a
		// spec file carries its own variant (and name).
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "variant" || f.Name == "model" {
				fail(fmt.Errorf("-%s selects a builtin model; a -model-file spec carries its own — drop one of the two", f.Name))
			}
		})
		models, err := core.LoadModels([]string{*modelFile})
		if err != nil {
			fail(err)
		}
		model = models[0]
	} else {
		name := *modelName
		if name == "PowerA9-fixed" { // legacy alias
			name = "PowerA9-ldld-fixed"
		}
		m, err := core.ResolveModel(name, *variantName)
		if err != nil && *variantName == "ours" && strings.Contains(err.Error(), "unknown model") {
			// The companions (PowerA9, TSO, SC, AlphaLike, ...) exist only
			// under Curr; like the historical lookup, -variant does not
			// apply to them. An invalid -variant value still errors.
			if cm, cerr := core.ResolveModel(name, "curr"); cerr == nil {
				m, err = cm, nil
			}
		}
		if err != nil {
			fail(err)
		}
		model = m
	}

	prog, err := compile.Compile(mapping, t.Prog)
	if err != nil {
		fail(err)
	}
	if *asm {
		for th, instrs := range prog.Instrs {
			fmt.Printf("T%d:\n", th)
			for _, ins := range instrs {
				if prog.Arch == isa.RISCV {
					fmt.Printf("  %s\n", riscv.Asm(prog, ins))
				} else {
					fmt.Printf("  %s\n", power.Asm(prog, ins))
				}
			}
		}
	}
	res, err := model.Evaluate(prog)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s compiled with %s, evaluated on %s:\n", t.Name, mapping.Name, model.FullName())
	var outs []string
	for o := range res.All {
		outs = append(outs, string(o))
	}
	sort.Strings(outs)
	for _, o := range outs {
		verdict := "unobservable"
		if res.Observable[tricheck.Outcome(o)] {
			verdict = "observable"
		}
		marker := "  "
		if tricheck.Outcome(o) == t.Specified {
			marker = "* "
		}
		fmt.Printf("%s%-13s %s\n", marker, verdict, o)
	}
	fmt.Printf("(%d candidate executions, %d µhb graphs built)\n", res.Candidates, res.Graphs)
	if *explain {
		_, why, err := model.Explain(prog, t.Specified)
		if err != nil {
			fail(err)
		}
		fmt.Println(why)
	}
	if *witness {
		w, err := report.Witness(model, prog, t.Specified)
		if err != nil {
			fail(err)
		}
		fmt.Print(w)
	}
	if *dotFor != "" {
		g, found, err := model.ObservableGraph(prog, tricheck.Outcome(*dotFor))
		if err != nil {
			fail(err)
		}
		if !found {
			fail(fmt.Errorf("outcome %q is not a candidate", *dotFor))
		}
		fmt.Print(g.DOT(t.Name))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "uspeccheck: %v\n", err)
	os.Exit(1)
}
