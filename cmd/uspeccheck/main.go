// Command uspeccheck compiles a litmus test with a chosen mapping and
// evaluates it on a chosen µspec microarchitecture model (toolflow steps
// 2–3 — the role of the Check tools in the paper), printing observable and
// unobservable final states, and optionally the compiled assembly and a
// µhb cycle/witness explanation.
//
// Usage:
//
//	uspeccheck -test 'wrc[rlx,rlx,rel,acq,rlx]' -mapping riscv-base-intuitive \
//	           -model nMM -variant curr [-asm] [-explain] [-dot outcome]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tricheck"
	"tricheck/internal/compile"
	"tricheck/internal/isa"
	"tricheck/internal/isa/power"
	"tricheck/internal/isa/riscv"
	"tricheck/internal/litmus"
	"tricheck/internal/report"
	"tricheck/internal/uspec"
)

func main() {
	testName := flag.String("test", "wrc[rlx,rlx,rel,acq,rlx]", "variant, e.g. 'wrc[rlx,rlx,rel,acq,rlx]'")
	mappingName := flag.String("mapping", "riscv-base-intuitive", "compiler mapping name")
	modelName := flag.String("model", "nMM", "µspec model (WR, rWR, rWM, rMM, nWR, nMM, A9like, PowerA9, ...)")
	variantName := flag.String("variant", "curr", "MCM variant: curr or ours")
	asm := flag.Bool("asm", false, "print the compiled assembly")
	explain := flag.Bool("explain", false, "explain the interesting outcome (µhb witness or cycle)")
	witness := flag.Bool("witness", false, "print a µhb event timeline (or cycle) for the interesting outcome")
	dotFor := flag.String("dot", "", "emit a Graphviz µhb graph for the given outcome")
	flag.Parse()

	t, err := litmus.ParseVariantName(*testName)
	if err != nil {
		fail(err)
	}
	mapping := tricheck.MappingByName(*mappingName)
	if mapping == nil {
		fail(fmt.Errorf("unknown mapping %q", *mappingName))
	}
	variant := uspec.Curr
	if *variantName == "ours" {
		variant = uspec.Ours
	}
	model := uspec.ModelByName(*modelName, variant)
	if model == nil {
		switch *modelName {
		case "PowerA9":
			model = uspec.PowerA9()
		case "PowerA9-fixed":
			model = uspec.PowerA9Fixed()
		case "TSO":
			model = uspec.TSO()
		case "SC":
			model = uspec.SCProof()
		case "AlphaLike":
			model = uspec.AlphaLike()
		default:
			fail(fmt.Errorf("unknown model %q", *modelName))
		}
	}

	prog, err := compile.Compile(mapping, t.Prog)
	if err != nil {
		fail(err)
	}
	if *asm {
		for th, instrs := range prog.Instrs {
			fmt.Printf("T%d:\n", th)
			for _, ins := range instrs {
				if prog.Arch == isa.RISCV {
					fmt.Printf("  %s\n", riscv.Asm(prog, ins))
				} else {
					fmt.Printf("  %s\n", power.Asm(prog, ins))
				}
			}
		}
	}
	res, err := model.Evaluate(prog)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s compiled with %s, evaluated on %s:\n", t.Name, mapping.Name, model.FullName())
	var outs []string
	for o := range res.All {
		outs = append(outs, string(o))
	}
	sort.Strings(outs)
	for _, o := range outs {
		verdict := "unobservable"
		if res.Observable[tricheck.Outcome(o)] {
			verdict = "observable"
		}
		marker := "  "
		if tricheck.Outcome(o) == t.Specified {
			marker = "* "
		}
		fmt.Printf("%s%-13s %s\n", marker, verdict, o)
	}
	fmt.Printf("(%d candidate executions, %d µhb graphs built)\n", res.Candidates, res.Graphs)
	if *explain {
		_, why, err := model.Explain(prog, t.Specified)
		if err != nil {
			fail(err)
		}
		fmt.Println(why)
	}
	if *witness {
		w, err := report.Witness(model, prog, t.Specified)
		if err != nil {
			fail(err)
		}
		fmt.Print(w)
	}
	if *dotFor != "" {
		g, found, err := model.ObservableGraph(prog, tricheck.Outcome(*dotFor))
		if err != nil {
			fail(err)
		}
		if !found {
			fail(fmt.Errorf("outcome %q is not a candidate", *dotFor))
		}
		fmt.Print(g.DOT(t.Name))
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "uspeccheck: %v\n", err)
	os.Exit(1)
}
