// Command trisynth synthesizes litmus-test shapes from first
// principles — every critical cycle over {po, pos, dep, rfe, coe, fre}
// up to a bound — and drives them through the TriCheck toolflow.
//
// Usage:
//
//	trisynth enumerate [-max-len N] [-min-len N] [-max-threads N] [-max-locs N]
//	                   [-deps] [-novel-only] [-v]
//	trisynth export    -dir DIR [bounds] [-novel-only] [-orders first|all]
//	trisynth sweep     [bounds] [-novel-only] [-isa base|base+a|both]
//	                   [-variant curr|ours|both] [-model-file spec.uspec ...]
//	                   [-workers N] [-cache file]
//	                   [-progress] [-csv] [-bugs] [-profile PREFIX]
//	                   [-fail-on-bug] [-backend uhb|opsim|both]
//	                   [-fail-on-divergence]
//
// enumerate lists the synthesized shapes (cycle word, threads,
// locations, variant count, novelty). export writes their memory-order
// expansions to an on-disk corpus in the herd C litmus format. sweep
// runs the expansions over the RISC-V stack matrix on the verification
// farm and prints per-family verdict tables; -bugs additionally lists
// every buggy (test, stack) pair on novel shapes — full-stack bugs on
// tests nobody wrote.
//
// The bounds flags are shared by all three subcommands: -max-len is the
// cycle length (= accesses) ceiling, -deps adds dependency-flavoured
// program-order edges, and -novel-only drops the shapes that are
// structurally identical to a shipped one (the rediscovered paper
// shapes).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"

	"tricheck"
	"tricheck/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "enumerate":
		cmdEnumerate(args)
	case "export":
		cmdExport(args)
	case "sweep":
		cmdSweep(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  trisynth enumerate [-max-len N] [-min-len N] [-max-threads N] [-max-locs N] [-deps] [-novel-only] [-v]
  trisynth export    -dir DIR [bounds] [-novel-only] [-orders first|all]
  trisynth sweep     [bounds] [-novel-only] [-isa base|base+a|both] [-variant curr|ours|both]
                     [-model-file spec.uspec ...] [-workers N] [-cache file] [-progress] [-csv]
                     [-bugs] [-profile PREFIX] [-fail-on-bug] [-backend uhb|opsim|both]
                     [-fail-on-divergence]`)
	os.Exit(2)
}

// stringList collects a repeatable string flag (-model-file).
type stringList []string

func (s *stringList) String() string { return fmt.Sprint([]string(*s)) }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

// onFatal runs before a fatal exit; cmdSweep uses it to flush pprof
// profiles so even a failed profiled sweep leaves usable profiles.
var onFatal func()

func fatal(err error) {
	if onFatal != nil {
		onFatal()
	}
	fmt.Fprintf(os.Stderr, "trisynth: %v\n", err)
	os.Exit(1)
}

// boundsFlags registers the shared synthesis bounds on a FlagSet.
func boundsFlags(fs *flag.FlagSet) (opts *tricheck.SynthOptions, novelOnly *bool) {
	opts = &tricheck.SynthOptions{}
	fs.IntVar(&opts.MaxLen, "max-len", 5, "maximum cycle length (edges = accesses)")
	fs.IntVar(&opts.MinLen, "min-len", 0, "minimum cycle length (default 3)")
	fs.IntVar(&opts.MaxThreads, "max-threads", 0, "maximum threads per shape (0 = unbounded)")
	fs.IntVar(&opts.MaxLocs, "max-locs", 0, "maximum shared locations per shape (0 = unbounded)")
	fs.BoolVar(&opts.Deps, "deps", false, "include dependency-flavoured program-order edges")
	novelOnly = fs.Bool("novel-only", false, "drop shapes structurally identical to shipped ones")
	return opts, novelOnly
}

func synthesize(opts *tricheck.SynthOptions, novelOnly bool) []*tricheck.Synthesized {
	res, err := tricheck.SynthesizeShapes(*opts)
	if err != nil {
		fatal(err)
	}
	if novelOnly {
		res = tricheck.SynthNovelOnly(res)
	}
	if len(res) == 0 {
		fatal(fmt.Errorf("no shapes synthesized within the bounds"))
	}
	return res
}

func cmdEnumerate(args []string) {
	fs := flag.NewFlagSet("enumerate", flag.ExitOnError)
	opts, novelOnly := boundsFlags(fs)
	verbose := fs.Bool("v", false, "also print each shape's specified outcome and fingerprint")
	fs.Parse(args)
	res := synthesize(opts, *novelOnly)
	for _, s := range res {
		novel := "shipped"
		if s.Novel {
			novel = "novel"
		}
		fmt.Printf("%-30s len=%d threads=%d locs=%d variants=%-4d %s\n",
			s.Shape.Name, s.Cycle.Len(), s.Cycle.NThreads, s.Cycle.NLocs, s.Shape.Variants(), novel)
		if *verbose {
			fmt.Printf("    specified %q  fingerprint %s\n", s.Shape.Specified, s.Fingerprint)
		}
	}
	st := tricheck.SynthSummarize(res)
	fmt.Fprintf(os.Stderr, "%d shapes (%d novel), %d memory-order variants; per length:", st.Cycles, st.Novel, st.Variants)
	for _, n := range st.Lengths() {
		fmt.Fprintf(os.Stderr, " %d=%d", n, st.ByLen[n])
	}
	fmt.Fprintln(os.Stderr)
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	opts, novelOnly := boundsFlags(fs)
	dir := fs.String("dir", "", "corpus directory to write")
	orders := fs.String("orders", "all", "which memory-order variants: first (one per shape) or all")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	res := synthesize(opts, *novelOnly)
	var tests []*tricheck.Test
	for _, s := range res {
		switch *orders {
		case "all":
			tests = append(tests, s.Shape.Generate()...)
		case "first":
			// One representative per shape: the canonical first-choice
			// variant, not the full 3^slots expansion.
			tests = append(tests, tricheck.SynthFirstInstance(s.Shape))
		default:
			fatal(fmt.Errorf("unknown -orders %q (want first or all)", *orders))
		}
	}
	n, err := tricheck.ExportCorpus(*dir, tests)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exported %d tests from %d synthesized shapes to %s\n", n, len(res), *dir)
}

func cmdSweep(args []string) {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	opts, novelOnly := boundsFlags(fs)
	isaFlag := fs.String("isa", "base", "ISA flavour: base, base+a or both")
	variant := fs.String("variant", "curr", "MCM version: curr, ours or both")
	var modelFiles stringList
	fs.Var(&modelFiles, "model-file", "µspec model spec file to sweep instead of the Table 7 matrix (repeatable)")
	workers := fs.Int("workers", 0, "parallel farm workers (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "memoized result cache snapshot (JSON)")
	progress := fs.Bool("progress", false, "stream farm progress to stderr")
	csv := fs.Bool("csv", false, "emit CSV instead of formatted tables")
	bugs := fs.Bool("bugs", false, "list buggy (test, stack) pairs on novel shapes")
	profile := fs.String("profile", "", "write cpu/heap pprof profiles to PREFIX.{cpu,mem}.pprof")
	failOnBug := fs.Bool("fail-on-bug", false, "exit non-zero (3) when any Bug verdict appears — lets CI gate on regressions")
	backendFlag := fs.String("backend", "uhb", "verdict backend: uhb, opsim or both (cross-check)")
	failOnDivergence := fs.Bool("fail-on-divergence", false, "exit non-zero (4) when backend=both finds a cross-check divergence")
	fs.Parse(args)

	backend, err := tricheck.ParseBackend(*backendFlag)
	if err != nil {
		fatal(err)
	}

	psess, err := prof.Begin(*profile)
	if err != nil {
		fatal(err)
	}
	// Session.Stop is idempotent: the fatal hook, the explicit stop after
	// the sweep and any future exit path can all call it safely.
	stopProfOnce := func() {
		if err := psess.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "trisynth: finalizing profiles: %v\n", err)
		}
	}
	onFatal = stopProfOnce
	defer func() { onFatal = nil }()

	res := synthesize(opts, *novelOnly)
	novel := map[string]bool{}
	var tests []*tricheck.Test
	for _, s := range res {
		novel[s.Shape.Name] = s.Novel
		tests = append(tests, s.Shape.Generate()...)
	}

	var stacks []tricheck.Stack
	if len(modelFiles) > 0 {
		variantSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "variant" {
				variantSet = true
			}
		})
		stacks, err = tricheck.SelectStacksFiles(*isaFlag, modelFiles, variantSet)
	} else {
		stacks, err = tricheck.SelectStacks(*isaFlag, *variant)
	}
	if err != nil {
		fatal(err)
	}
	if err := tricheck.ValidateBackendStacks(backend, stacks); err != nil {
		fatal(fmt.Errorf("%v (use -backend both to cross-check where possible)", err))
	}

	eng := tricheck.NewEngine()
	if *cache != "" {
		if err := tricheck.LoadMemoSnapshotLenient(eng, *cache, os.Stderr); err != nil {
			fatal(err)
		}
	}
	var events chan tricheck.Progress
	done := make(chan struct{})
	if *progress {
		events = make(chan tricheck.Progress, 1024)
		go func() {
			tricheck.StreamProgress(os.Stderr, events, 0)
			close(done)
		}()
	} else {
		close(done)
	}
	results, err := eng.SweepStreamBackend(context.Background(), tests, stacks, *workers, backend, events)
	<-done
	if err != nil {
		fatal(err)
	}
	// The profile window covers synthesis + the farm sweep, the two costs
	// a perf PR would target; reporting below is excluded.
	stopProfOnce()

	if *csv {
		tricheck.WriteCSV(os.Stdout, results)
	} else {
		fmt.Printf("trisynth: %d synthesized shapes, %d tests × %d stacks\n\n", len(res), len(tests), len(stacks))
		tricheck.WriteFigure15(os.Stdout, results)
	}
	if *cache != "" {
		if err := eng.SaveMemoSnapshot(*cache); err != nil {
			fatal(err)
		}
	}
	stats := eng.LastFarmStats()
	fmt.Fprintf(os.Stderr, "farm: %d jobs (%d unique), %d executed, %d cache hits; %d verifier executions\n",
		stats.Jobs, stats.Unique, stats.Executed, stats.CacheHits, eng.Executions())

	// Novel-bug report: the sweep's whole point.
	type finding struct{ test, stack string }
	var findings []finding
	novelBugShapes := map[string]bool{}
	for _, sr := range results {
		for _, r := range sr.Results {
			if r.Verdict == tricheck.Bug && novel[r.Test.Shape.Name] {
				findings = append(findings, finding{r.Test.Name, r.Stack.Name()})
				novelBugShapes[r.Test.Shape.Name] = true
			}
		}
	}
	novelTotal := 0
	for _, isNovel := range novel {
		if isNovel {
			novelTotal++
		}
	}
	var shapeNames []string
	for n := range novelBugShapes {
		shapeNames = append(shapeNames, n)
	}
	sort.Strings(shapeNames)
	fmt.Fprintf(os.Stderr, "novel shapes with Bug verdicts: %d of %d novel (%d synthesized)", len(shapeNames), novelTotal, len(res))
	for _, n := range shapeNames {
		fmt.Fprintf(os.Stderr, " %s", n)
	}
	fmt.Fprintln(os.Stderr)
	if *bugs {
		// Keep stdout machine-readable under -csv: the bug listing
		// moves to stderr there.
		out := os.Stdout
		if *csv {
			out = os.Stderr
		}
		sort.Slice(findings, func(i, j int) bool {
			if findings[i].test != findings[j].test {
				return findings[i].test < findings[j].test
			}
			return findings[i].stack < findings[j].stack
		})
		for _, f := range findings {
			fmt.Fprintf(out, "BUG %s on %s\n", f.test, f.stack)
		}
	}

	if *failOnBug {
		totalBugs := 0
		for _, sr := range results {
			totalBugs += sr.Tally.Bugs
		}
		if totalBugs > 0 {
			fmt.Fprintf(os.Stderr, "trisynth: -fail-on-bug: %d Bug verdicts\n", totalBugs)
			os.Exit(3)
		}
	}
	if divergent := eng.Divergences(); divergent > 0 {
		fmt.Fprintf(os.Stderr, "trisynth: backend cross-check: %d divergence(s) between µhb and opsim\n", divergent)
		if *failOnDivergence {
			os.Exit(4)
		}
	}
}
