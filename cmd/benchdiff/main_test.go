package main

import (
	"encoding/json"
	"regexp"
	"strings"
	"testing"
)

// snap builds a `go test -json` stream the way the real tool emits
// benchmark lines: the name and the numbers split across Output events.
func snap(t *testing.T, lines ...string) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(`{"Action":"start","Package":"tricheck"}` + "\n")
	emit := func(out string) {
		enc, err := json.Marshal(event{Action: "output", Output: out})
		if err != nil {
			t.Fatal(err)
		}
		b.Write(enc)
		b.WriteByte('\n')
	}
	for _, l := range lines {
		parts := strings.SplitN(l, "\t", 2)
		emit(parts[0] + "\t")
		rest := ""
		if len(parts) == 2 {
			rest = parts[1]
		}
		emit(rest + "\n")
	}
	return b.String()
}

func TestParseSnapshotReassemblesSplitLines(t *testing.T) {
	src := snap(t,
		"BenchmarkFarmColdSweep-8    \t       1\t  4418221 ns/op\t 8208 tests/sec\t  101 B/op\t       7 allocs/op",
		"BenchmarkStep3              \t       1\t   100000 ns/op\t  419 allocs/op",
		"BenchmarkNoAllocStats       \t       2\t      500 ns/op",
	)
	got, err := parseSnapshot(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	cold, ok := got["BenchmarkFarmColdSweep"]
	if !ok || cold.NsPerOp != 4418221 || cold.AllocsPerOp != 7 || cold.BytesPerOp != 101 || !cold.HasAllocs {
		t.Fatalf("FarmColdSweep = %+v, %v (GOMAXPROCS suffix must be stripped)", cold, ok)
	}
	step3, ok := got["BenchmarkStep3"]
	if !ok || step3.NsPerOp != 100000 || step3.AllocsPerOp != 419 {
		t.Fatalf("Step3 = %+v, %v", step3, ok)
	}
	plain, ok := got["BenchmarkNoAllocStats"]
	if !ok || plain.NsPerOp != 500 || plain.HasAllocs {
		t.Fatalf("NoAllocStats = %+v, %v", plain, ok)
	}
}

func TestParseSnapshotOnCommittedBaseline(t *testing.T) {
	// The committed BENCH_3.json must stay parseable — it is the diff
	// baseline the CI bench job reads.
	res, ok := loadSnapshot("../../BENCH_3.json")
	if !ok {
		t.Fatal("cannot load ../../BENCH_3.json")
	}
	if len(res) < 10 {
		t.Fatalf("parsed only %d benchmarks from the committed baseline", len(res))
	}
	for name, r := range res {
		if r.NsPerOp <= 0 {
			t.Fatalf("%s: ns/op = %v", name, r.NsPerOp)
		}
	}
}

func TestWriteDiffTable(t *testing.T) {
	old := map[string]result{
		"BenchmarkA":    {NsPerOp: 1000, AllocsPerOp: 100, HasAllocs: true},
		"BenchmarkB":    {NsPerOp: 2e6, AllocsPerOp: 50, HasAllocs: true},
		"BenchmarkGone": {NsPerOp: 1},
	}
	new := map[string]result{
		"BenchmarkA":   {NsPerOp: 900, AllocsPerOp: 100, HasAllocs: true},
		"BenchmarkB":   {NsPerOp: 3e6, AllocsPerOp: 75, HasAllocs: true},
		"BenchmarkNew": {NsPerOp: 42, HasAllocs: false},
	}
	var b strings.Builder
	writeDiff(&b, "OLD.json", "NEW.json", old, new)
	out := b.String()
	for _, want := range []string{
		"| A | 1.00µs → 900ns | -10.00% | 100 → 100 | 0.00% |",
		"| B | 2.00ms → 3.00ms | +50.00% | 50 → 75 | +50.00% |",
		"| New | — → 42ns | new | — | new |",
		"No longer present: Gone",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("diff table missing %q:\n%s", want, out)
		}
	}
}

func TestDelta(t *testing.T) {
	for _, tc := range []struct {
		old, new float64
		want     string
	}{
		{100, 150, "+50.00%"},
		{100, 50, "-50.00%"},
		{100, 100, "0.00%"},
		{0, 10, "n/a"},
	} {
		if got := delta(tc.old, tc.new); got != tc.want {
			t.Fatalf("delta(%v, %v) = %q, want %q", tc.old, tc.new, got, tc.want)
		}
	}
}

func TestGateFailures(t *testing.T) {
	old := map[string]result{
		"BenchmarkFigure15IRIWBaseCurr": {NsPerOp: 100e6},
		"BenchmarkFarmColdSweep":        {NsPerOp: 200e6},
		"BenchmarkNoisyMicro":           {NsPerOp: 100},
	}
	new := map[string]result{
		"BenchmarkFigure15IRIWBaseCurr": {NsPerOp: 120e6}, // +20%
		"BenchmarkFarmColdSweep":        {NsPerOp: 150e6}, // -25%
		"BenchmarkNoisyMicro":           {NsPerOp: 900},   // +800%, filtered out
		"BenchmarkBrandNew":             {NsPerOp: 1},     // no baseline
	}
	re := regexp.MustCompile(`Figure15|FarmColdSweep`)
	if bad := gateFailures(old, new, re, 50); len(bad) != 0 {
		t.Fatalf("gate at +50%% should pass, got %v", bad)
	}
	bad := gateFailures(old, new, re, 10)
	if len(bad) != 1 || !strings.Contains(bad[0], "Figure15IRIWBaseCurr") {
		t.Fatalf("gate at +10%% should flag only the IRIW regression, got %v", bad)
	}
	// No filter: the noisy micro-benchmark regression is flagged too.
	if bad := gateFailures(old, new, nil, 10); len(bad) != 2 {
		t.Fatalf("unfiltered gate should flag two regressions, got %v", bad)
	}
}
