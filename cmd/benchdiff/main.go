// Command benchdiff compares two benchmark snapshots produced by
// `go test -bench -benchmem -json` (the BENCH_N.json artifacts the CI
// bench job emits) and writes a per-benchmark ns/op and allocs/op delta
// table as GitHub-flavoured markdown — the CI appends it to
// $GITHUB_STEP_SUMMARY.
//
// Usage:
//
//	benchdiff -old BENCH_3.json -new BENCH_4.json
//
// benchdiff is report-only by default: single-iteration CI timings are
// noisy, so it does not fail the job on a regression, and a missing
// snapshot (first run on a branch) degrades to a note instead of an
// error. With `-fail-over <pct>` it becomes a gate: the exit status is
// non-zero if any benchmark's ns/op regressed by more than pct percent
// against the baseline. `-match <regexp>` restricts the gate to the
// benchmarks that matter (the report still covers everything), so noisy
// micro-benchmarks don't flake the job:
//
//	benchdiff -old BENCH_7.json -new BENCH_8.json \
//	    -fail-over 50 -match 'Figure15|FarmColdSweep'
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one parsed benchmark line.
type result struct {
	NsPerOp     float64
	AllocsPerOp float64
	BytesPerOp  float64
	HasAllocs   bool
}

// event is the `go test -json` envelope; only output lines matter here.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// benchLine matches a benchmark result line after reassembly, e.g.
//
//	BenchmarkFarmColdSweep-8   1   4418221 ns/op   101 B/op   7 allocs/op
//
// The -N GOMAXPROCS suffix is optional (absent on single-CPU runners).
var (
	benchLine  = regexp.MustCompile(`^(Benchmark\S+?)(-\d+)?\s+\d+\s+([0-9.]+) ns/op(.*)$`)
	bytesPart  = regexp.MustCompile(`([0-9.]+) B/op`)
	allocsPart = regexp.MustCompile(`([0-9.]+) allocs/op`)
)

// parseSnapshot reads a `go test -json` stream and returns the
// benchmark results keyed by name (GOMAXPROCS suffix stripped). Test
// JSON splits one logical line across several Output events, so the
// events are concatenated before scanning.
func parseSnapshot(r io.Reader) (map[string]result, error) {
	var text strings.Builder
	dec := json.NewDecoder(r)
	for {
		var ev event
		if err := dec.Decode(&ev); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("decoding test JSON: %w", err)
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	out := map[string]result{}
	sc := bufio.NewScanner(strings.NewReader(text.String()))
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		res := result{NsPerOp: ns}
		if b := bytesPart.FindStringSubmatch(m[4]); b != nil {
			res.BytesPerOp, _ = strconv.ParseFloat(b[1], 64)
		}
		if a := allocsPart.FindStringSubmatch(m[4]); a != nil {
			res.AllocsPerOp, _ = strconv.ParseFloat(a[1], 64)
			res.HasAllocs = true
		}
		out[m[1]] = res
	}
	return out, sc.Err()
}

func loadSnapshot(path string) (map[string]result, bool) {
	f, err := os.Open(path)
	if err != nil {
		return nil, false
	}
	defer f.Close()
	m, err := parseSnapshot(f)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
		return nil, false
	}
	return m, true
}

// delta renders a relative change; single-iteration noise means the
// sign matters more than the digits.
func delta(old, new float64) string {
	if old == 0 {
		return "n/a"
	}
	d := (new - old) / old * 100
	if math.Abs(d) < 0.005 {
		return "0.00%"
	}
	return fmt.Sprintf("%+.2f%%", d)
}

// human renders a ns/op value with a readable unit.
func human(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.2fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func writeDiff(w io.Writer, oldName, newName string, old, new map[string]result) {
	fmt.Fprintf(w, "### Benchmark delta: %s → %s\n\n", oldName, newName)
	fmt.Fprintf(w, "Single-iteration CI timings — directional; gated only via -fail-over.\n\n")
	fmt.Fprintf(w, "| benchmark | ns/op (old → new) | Δ ns/op | allocs/op (old → new) | Δ allocs |\n")
	fmt.Fprintf(w, "|---|---|---|---|---|\n")
	names := make([]string, 0, len(new))
	for name := range new {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		n := new[name]
		o, ok := old[name]
		short := strings.TrimPrefix(name, "Benchmark")
		if !ok {
			allocs := "—"
			if n.HasAllocs {
				allocs = fmt.Sprintf("— → %.0f", n.AllocsPerOp)
			}
			fmt.Fprintf(w, "| %s | — → %s | new | %s | new |\n", short, human(n.NsPerOp), allocs)
			continue
		}
		allocsCell, allocsDelta := "—", "—"
		if n.HasAllocs && o.HasAllocs {
			allocsCell = fmt.Sprintf("%.0f → %.0f", o.AllocsPerOp, n.AllocsPerOp)
			allocsDelta = delta(o.AllocsPerOp, n.AllocsPerOp)
		}
		fmt.Fprintf(w, "| %s | %s → %s | %s | %s | %s |\n",
			short, human(o.NsPerOp), human(n.NsPerOp), delta(o.NsPerOp, n.NsPerOp), allocsCell, allocsDelta)
	}
	var gone []string
	for name := range old {
		if _, ok := new[name]; !ok {
			gone = append(gone, strings.TrimPrefix(name, "Benchmark"))
		}
	}
	if len(gone) > 0 {
		sort.Strings(gone)
		fmt.Fprintf(w, "\nNo longer present: %s\n", strings.Join(gone, ", "))
	}
}

// gateFailures returns, sorted by name, one line per benchmark whose
// ns/op regressed by more than pct percent from old to new. Only
// benchmarks matching match (nil = all) and present in both snapshots
// are considered: a brand-new benchmark has no baseline to regress
// from, and a deleted one is visible in the report.
func gateFailures(old, new map[string]result, match *regexp.Regexp, pct float64) []string {
	var bad []string
	for name, n := range new {
		if match != nil && !match.MatchString(name) {
			continue
		}
		o, ok := old[name]
		if !ok || o.NsPerOp == 0 {
			continue
		}
		d := (n.NsPerOp - o.NsPerOp) / o.NsPerOp * 100
		if d > pct {
			bad = append(bad, fmt.Sprintf("%s: %s → %s (%+.1f%% > +%.1f%%)",
				strings.TrimPrefix(name, "Benchmark"), human(o.NsPerOp), human(n.NsPerOp), d, pct))
		}
	}
	sort.Strings(bad)
	return bad
}

func main() {
	oldPath := flag.String("old", "", "baseline snapshot (go test -json)")
	newPath := flag.String("new", "", "candidate snapshot (go test -json)")
	failOver := flag.Float64("fail-over", 0, "exit non-zero if a benchmark's ns/op regresses by more than this percentage (0 = report only)")
	match := flag.String("match", "", "regexp selecting the benchmarks the -fail-over gate considers (default: all)")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -old BENCH_A.json -new BENCH_B.json [-fail-over pct [-match re]]")
		os.Exit(2)
	}
	var matchRe *regexp.Regexp
	if *match != "" {
		re, err := regexp.Compile(*match)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: -match: %v\n", err)
			os.Exit(2)
		}
		matchRe = re
	}
	// A missing or unreadable snapshot is a note, not a failure — even
	// in gate mode, the first run on a branch has no baseline to hold
	// the candidate against.
	newRes, ok := loadSnapshot(*newPath)
	if !ok {
		fmt.Printf("### Benchmark delta\n\nNo candidate snapshot at `%s` — nothing to compare.\n", *newPath)
		return
	}
	oldRes, ok := loadSnapshot(*oldPath)
	if !ok {
		fmt.Printf("### Benchmark delta\n\nNo baseline snapshot at `%s` — skipping the comparison (first run?).\n", *oldPath)
		return
	}
	writeDiff(os.Stdout, *oldPath, *newPath, oldRes, newRes)
	if *failOver > 0 {
		if bad := gateFailures(oldRes, newRes, matchRe, *failOver); len(bad) > 0 {
			fmt.Printf("\n**Gate: FAIL** — regressions over +%.1f%%:\n\n", *failOver)
			for _, line := range bad {
				fmt.Printf("- %s\n", line)
				fmt.Fprintf(os.Stderr, "benchdiff: gate: %s\n", line)
			}
			os.Exit(1)
		}
		fmt.Printf("\nGate: pass (no ns/op regression over +%.1f%%).\n", *failOver)
	}
}
