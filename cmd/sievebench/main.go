// Command sievebench regenerates the paper's Figure 2: simulated runtimes
// of the parallel Sieve of Eratosthenes in three atomics flavours (relaxed,
// relaxed + ARM's load→load hazard fix, and SC atomics) for 1..8 threads.
//
// Usage:
//
//	sievebench [-n 1000000] [-threads 8] [-csv]
package main

import (
	"flag"
	"fmt"

	"tricheck/internal/sieve"
	"tricheck/internal/timing"
)

func main() {
	n := flag.Int("n", 1000000, "sieve bound (the paper uses 1e8 on real hardware)")
	threads := flag.Int("threads", 8, "maximum thread count")
	csv := flag.Bool("csv", false, "emit CSV")
	flag.Parse()

	pts := sieve.Figure2(*n, *threads, timing.DefaultConfig())
	if *csv {
		fmt.Println("threads,relaxed,fixed,sc,fix_overhead,sc_over_fixed")
		for _, p := range pts {
			fmt.Printf("%d,%.0f,%.0f,%.0f,%.4f,%.4f\n", p.Threads, p.Relaxed, p.Fixed, p.SC, p.FixOverhead, p.SCOverFixed)
		}
		return
	}
	fmt.Printf("Figure 2 (simulated): parallel Sieve of Eratosthenes, n=%d\n", *n)
	fmt.Printf("%-8s %14s %14s %14s %14s %14s\n", "threads", "RLX", "RLX+fix", "SC (DMB)", "fix overhead", "SC over fix")
	for _, p := range pts {
		fmt.Printf("%-8d %14.0f %14.0f %14.0f %13.1f%% %13.1f%%\n",
			p.Threads, p.Relaxed, p.Fixed, p.SC, 100*p.FixOverhead, 100*p.SCOverFixed)
	}
	last := pts[len(pts)-1]
	fmt.Printf("\nAt %d threads the hazard fix costs %.1f%% (paper: 15.3%%) and the fixed\n", last.Threads, 100*last.FixOverhead)
	fmt.Printf("variant has degraded to within %.1f%% of fully SC atomics (paper: converged).\n", 100*last.SCOverFixed)
}
