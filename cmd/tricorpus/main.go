// Command tricorpus inspects and maintains on-disk litmus corpora in
// the herd C litmus format.
//
// Usage:
//
//	tricorpus export -dir DIR [-suite paper|extended|all] [-family NAME]
//	tricorpus ls     -dir DIR [-family NAME] [-v]
//	tricorpus show   -dir DIR -name TEST
//	tricorpus verify -dir DIR [-profile PREFIX]
//
// export writes generator suites to DIR as <family>/<name>.litmus
// files. ls lists the corpus (with fingerprints under -v). show prints
// one test both as stored and in the internal textual format. verify
// checks every file round-trips (parse → emit → parse is a fixed point)
// and that canonical fingerprints are stable — the invariant the
// verification farm's memo cache relies on; -profile PREFIX captures
// cpu/heap pprof profiles of the run into PREFIX.{cpu,mem}.pprof.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"tricheck"
	"tricheck/internal/corpus"
	"tricheck/internal/litmus"
	"tricheck/internal/prof"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	cmd, args := os.Args[1], os.Args[2:]
	switch cmd {
	case "export":
		cmdExport(args)
	case "ls":
		cmdLs(args)
	case "show":
		cmdShow(args)
	case "verify":
		cmdVerify(args)
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  tricorpus export -dir DIR [-suite paper|extended|all] [-family NAME]
  tricorpus ls     -dir DIR [-family NAME] [-v]
  tricorpus show   -dir DIR -name TEST
  tricorpus verify -dir DIR [-profile PREFIX]`)
	os.Exit(2)
}

// onFatal runs before a fatal exit; cmdVerify uses it to flush pprof
// profiles so even a failed profiled run leaves usable profiles.
var onFatal func()

func fatal(err error) {
	if onFatal != nil {
		onFatal()
	}
	fmt.Fprintf(os.Stderr, "tricorpus: %v\n", err)
	os.Exit(1)
}

func cmdExport(args []string) {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory to write")
	suite := fs.String("suite", "paper", "which generator suite: paper, extended or all")
	family := fs.String("family", "", "restrict to one litmus family")
	fs.Parse(args)
	if *dir == "" {
		usage()
	}
	var shapes []*litmus.Shape
	switch *suite {
	case "paper":
		shapes = litmus.PaperShapes()
	case "extended":
		shapes = litmus.ExtendedShapes()
	case "all":
		shapes = litmus.AllShapes()
	default:
		fatal(fmt.Errorf("unknown suite %q", *suite))
	}
	var tests []*tricheck.Test
	for _, s := range shapes {
		if *family != "" && s.Name != *family {
			continue
		}
		tests = append(tests, s.Generate()...)
	}
	if len(tests) == 0 {
		fatal(fmt.Errorf("no tests selected (suite=%s family=%q)", *suite, *family))
	}
	n, err := tricheck.ExportCorpus(*dir, tests)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("exported %d tests to %s\n", n, *dir)
}

func loadCorpus(dir string) *tricheck.Corpus {
	if dir == "" {
		usage()
	}
	c, err := tricheck.LoadCorpus(dir)
	if err != nil {
		fatal(err)
	}
	return c
}

func cmdLs(args []string) {
	fs := flag.NewFlagSet("ls", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	family := fs.String("family", "", "restrict to one family")
	verbose := fs.Bool("v", false, "show fingerprints and paths")
	fs.Parse(args)
	c := loadCorpus(*dir)
	writeListing(os.Stdout, os.Stderr, c, *family, *verbose)
}

// writeListing renders the ls output deterministically: entries sorted
// by (family, name) regardless of on-disk layout, with the per-family
// tallies in sorted family order.
func writeListing(w, summary io.Writer, c *tricheck.Corpus, family string, verbose bool) {
	entries := make([]*tricheck.CorpusEntry, 0, len(c.Entries))
	for _, e := range c.Entries {
		if family != "" && e.Family != family {
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Family != entries[j].Family {
			return entries[i].Family < entries[j].Family
		}
		return entries[i].Name < entries[j].Name
	})
	byFam := map[string]int{}
	for _, e := range entries {
		byFam[e.Family]++
		if verbose {
			fmt.Fprintf(w, "%-40s %s %s\n", e.Name, e.Test.Fingerprint(), e.Path)
		} else {
			fmt.Fprintln(w, e.Name)
		}
	}
	fmt.Fprintf(summary, "%d tests in %d families:", c.Len(), len(c.Families()))
	for _, f := range c.Families() {
		if n := byFam[f]; n > 0 {
			fmt.Fprintf(summary, " %s=%d", f, n)
		}
	}
	fmt.Fprintln(summary)
}

func cmdShow(args []string) {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	name := fs.String("name", "", "test name")
	fs.Parse(args)
	c := loadCorpus(*dir)
	if *name == "" {
		usage()
	}
	e := c.Lookup(*name)
	if e == nil {
		fatal(fmt.Errorf("no test %q in %s", *name, *dir))
	}
	data, err := os.ReadFile(filepath.Join(c.Dir, e.Path))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("── %s (%s, family %s)\n%s\n", e.Name, e.Path, e.Family, data)
	fmt.Printf("── internal format\n")
	if err := litmus.Format(os.Stdout, e.Test); err != nil {
		fatal(err)
	}
	fmt.Printf("── fingerprint %s\n", e.Test.Fingerprint())
}

func cmdVerify(args []string) {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	dir := fs.String("dir", "", "corpus directory")
	profile := fs.String("profile", "", "write cpu/heap pprof profiles to PREFIX.{cpu,mem}.pprof")
	fs.Parse(args)
	psess, err := prof.Begin(*profile)
	if err != nil {
		fatal(err)
	}
	// Session.Stop is idempotent: the fatal hook, the explicit stop after
	// the loop and any future exit path can all call it safely.
	stopProfOnce := func() {
		if err := psess.Stop(); err != nil {
			fmt.Fprintf(os.Stderr, "tricorpus: finalizing profiles: %v\n", err)
		}
	}
	onFatal = stopProfOnce
	defer func() { onFatal = nil }()
	c := loadCorpus(*dir)
	bad := 0
	for _, e := range c.Entries {
		first, err := corpus.EmitString(e.Test)
		if err != nil {
			fmt.Printf("FAIL %s: emit: %v\n", e.Path, err)
			bad++
			continue
		}
		reparsed, err := corpus.ParseString(first)
		if err != nil {
			fmt.Printf("FAIL %s: re-parse: %v\n", e.Path, err)
			bad++
			continue
		}
		second, err := corpus.EmitString(reparsed)
		if err != nil {
			fmt.Printf("FAIL %s: re-emit: %v\n", e.Path, err)
			bad++
			continue
		}
		if first != second {
			fmt.Printf("FAIL %s: emit/parse/emit is not a fixed point\n", e.Path)
			bad++
			continue
		}
		if e.Test.Fingerprint() != reparsed.Fingerprint() {
			fmt.Printf("FAIL %s: fingerprint unstable across round trip\n", e.Path)
			bad++
		}
	}
	// Finalize profiles before any exit path so partial runs still profile.
	stopProfOnce()
	if bad > 0 {
		fatal(fmt.Errorf("%d of %d tests failed verification", bad, c.Len()))
	}
	fmt.Printf("ok: %d tests round-trip with stable fingerprints\n", c.Len())
}
