package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"tricheck"
)

// TestListingDeterministic: ls output is sorted by (family, name)
// regardless of the on-disk file layout, and identical across reloads.
func TestListingDeterministic(t *testing.T) {
	dir := t.TempDir()
	// Export two shapes, then move one file so WalkDir order diverges
	// from name order: path order would list zz-relocated/… last by
	// family dir but its family metadata keeps it in "mp".
	var tests []*tricheck.Test
	tests = append(tests, tricheck.MP.Generate()[:3]...)
	tests = append(tests, tricheck.SB.Generate()[:2]...)
	if _, err := tricheck.ExportCorpus(dir, tests); err != nil {
		t.Fatal(err)
	}
	// Relocate one mp file into a directory that sorts after sb: the
	// explicit family metadata inside the file wins over the layout.
	if err := os.MkdirAll(filepath.Join(dir, "zz"), 0o755); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(dir, "mp", "mp-rlx.rlx.rlx.rlx.litmus")
	if err := os.Rename(moved, filepath.Join(dir, "zz", "relocated.litmus")); err != nil {
		t.Fatal(err)
	}

	render := func() string {
		c, err := tricheck.LoadCorpus(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out, sum strings.Builder
		writeListing(&out, &sum, c, "", false)
		return out.String() + "#" + sum.String()
	}
	first := render()
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("listing unstable across reloads:\n%s\nvs\n%s", first, got)
		}
	}
	lines := strings.Split(strings.TrimSuffix(strings.Split(first, "#")[0], "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("listed %d tests, want 5:\n%s", len(lines), first)
	}
	for i := 1; i < len(lines); i++ {
		if lines[i-1] > lines[i] {
			t.Errorf("listing not sorted: %q before %q", lines[i-1], lines[i])
		}
	}
	// The relocated file keeps its metadata family, so every mp test
	// still lists before every sb test.
	if !strings.HasPrefix(lines[0], "mp[") || !strings.HasPrefix(lines[4], "sb[") {
		t.Errorf("family grouping broken:\n%s", first)
	}
	if !strings.Contains(first, "mp=3") || !strings.Contains(first, "sb=2") {
		t.Errorf("family tallies wrong:\n%s", first)
	}
}

// TestListingFamilyFilterAndVerbose: the -family filter and -v
// fingerprint columns stay deterministic too.
func TestListingFamilyFilterAndVerbose(t *testing.T) {
	dir := t.TempDir()
	var tests []*tricheck.Test
	tests = append(tests, tricheck.MP.Generate()[:2]...)
	tests = append(tests, tricheck.SB.Generate()[:2]...)
	if _, err := tricheck.ExportCorpus(dir, tests); err != nil {
		t.Fatal(err)
	}
	c, err := tricheck.LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out, sum strings.Builder
	writeListing(&out, &sum, c, "sb", true)
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("family filter listed %d tests, want 2:\n%s", len(lines), out.String())
	}
	for _, l := range lines {
		if !strings.HasPrefix(l, "sb[") {
			t.Errorf("family filter leaked: %q", l)
		}
		if fields := strings.Fields(l); len(fields) != 3 {
			t.Errorf("verbose listing has %d columns, want 3: %q", len(fields), l)
		}
	}
}
