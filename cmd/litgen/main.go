// Command litgen is the litmus-test generator of the paper's Figure 5: it
// expands litmus-test templates into all permutations of C11 memory-order
// primitives and prints them.
//
// Usage:
//
//	litgen                  # list shapes and variant counts
//	litgen -shape wrc       # print every wrc variant
//	litgen -shape wrc -programs   # include the C11 program bodies
package main

import (
	"flag"
	"fmt"
	"os"

	"tricheck"
)

func main() {
	shapeName := flag.String("shape", "", "shape to expand (empty: list shapes)")
	programs := flag.Bool("programs", false, "print full program bodies")
	flag.Parse()

	if *shapeName == "" {
		fmt.Println("shape        variants  in-paper-suite  description")
		total := 0
		for _, s := range tricheck.AllShapes() {
			fmt.Printf("%-12s %8d  %-14v  %s\n", s.Name, s.Variants(), s.Paper, s.Description)
			if s.Paper {
				total += s.Variants()
			}
		}
		fmt.Printf("\npaper suite total: %d tests\n", total)
		return
	}
	s := tricheck.ShapeByName(*shapeName)
	if s == nil {
		fmt.Fprintf(os.Stderr, "litgen: unknown shape %q\n", *shapeName)
		os.Exit(2)
	}
	for _, t := range s.Generate() {
		fmt.Println(t.Name)
		if *programs {
			fmt.Print(t.Prog.String())
			fmt.Printf("interesting outcome: %s (%s)\n\n", t.Specified, s.SpecifiedNote)
		}
	}
}
