package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"tricheck"
)

// cmdCoverage implements `tricheck coverage`: run the selected sweep and
// report the engine's verification-coverage ledger — which µspec axioms
// fired edges, owned stored (post-dedup) edges and witnessed forbidding
// cycles, per model — plus, with -discriminate, the greedy minimal test
// suite separating every pair of swept configs. `coverage diff` compares
// two saved snapshots instead of sweeping.
func cmdCoverage(args []string) {
	if len(args) > 0 && args[0] == "diff" {
		cmdCoverageDiff(args[1:])
		return
	}
	fs := flag.NewFlagSet("coverage", flag.ExitOnError)
	family := fs.String("family", "", "restrict to one litmus family (mp, sb, wrc, ...)")
	isaFlag := fs.String("isa", "both", "ISA flavour: base, base+a or both")
	variant := fs.String("variant", "both", "MCM version: curr, ours or both")
	var modelFiles multiFlag
	fs.Var(&modelFiles, "model-file", "µspec model spec file to verify instead of the Table 7 matrix (repeatable)")
	lattice := fs.Bool("lattice", false, "sweep every legal microarchitecture config of the selected variant(s), not just Table 7")
	workers := fs.Int("workers", 0, "parallel farm workers (0 = GOMAXPROCS)")
	cache := fs.String("cache", "", "memoized result cache snapshot (JSON); loaded if present, saved after the run")
	discriminate := fs.Bool("discriminate", false, "reduce the verdict-vector matrix to the minimal discriminating suite (greedy set cover over config pairs)")
	coverageOut := fs.String("coverage-out", "", "write the full ledger snapshot as JSON to this file (\"-\" = stdout)")
	topK := fs.Int("k", 10, "rows per report table")
	fs.Parse(args)

	variantSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "variant" {
			variantSet = true
		}
	})

	var tests []*tricheck.Test
	if *family == "" {
		tests = tricheck.PaperSuite()
	} else {
		shape := tricheck.ShapeByName(*family)
		if shape == nil {
			fmt.Fprintf(os.Stderr, "tricheck coverage: unknown family %q\n", *family)
			os.Exit(2)
		}
		tests = shape.Generate()
	}
	stacks, err := selectStacks(*isaFlag, *variant, variantSet, modelFiles, *lattice)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck coverage: %v\n", err)
		os.Exit(2)
	}

	eng := tricheck.NewEngine()
	if *cache != "" {
		if err := tricheck.LoadMemoSnapshotLenient(eng, *cache, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck coverage: loading cache: %v\n", err)
			os.Exit(1)
		}
	}
	if _, err := eng.SweepStream(tests, stacks, *workers, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tricheck coverage: %v\n", err)
		os.Exit(1)
	}
	if *cache != "" {
		if err := eng.SaveMemoSnapshot(*cache); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck coverage: saving cache: %v\n", err)
			os.Exit(1)
		}
	}

	snap := eng.Coverage().Snapshot()
	if *coverageOut != "" {
		if err := emitJSON(*coverageOut, snap); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck coverage: %v\n", err)
			os.Exit(1)
		}
		if *coverageOut != "-" {
			fmt.Fprintf(os.Stderr, "coverage snapshot written to %s\n", *coverageOut)
		}
	}

	nAxioms := len(snap.Axioms)
	fmt.Printf("tricheck coverage: %d tests × %d configs, %d executed jobs\n",
		len(tests), len(stacks), snap.Totals.Jobs)
	fmt.Printf("axioms: %d/%d fired, %d/%d edged, %d/%d cycle-witnessed; %d verdict vectors\n\n",
		snap.Totals.AxiomsFired, nAxioms, snap.Totals.AxiomsEdged, nAxioms,
		snap.Totals.AxiomsCycled, nAxioms, snap.Totals.Vectors)

	fmt.Println("── per-model axiom coverage ──")
	fmt.Printf("  %-28s %7s %20s %6s %6s %7s\n", "MODEL", "JOBS", "VERDICTS(B/S/E)", "FIRED", "EDGED", "CYCLED")
	for i, mm := range snap.Models {
		if i >= *topK {
			fmt.Printf("  … %d more models (see -coverage-out for the full matrix)\n", len(snap.Models)-i)
			break
		}
		fired, edged, cycled := 0, 0, 0
		for _, row := range mm.Axioms {
			if row.Fired > 0 {
				fired++
			}
			if row.Edges > 0 {
				edged++
			}
			if row.Cycles > 0 {
				cycled++
			}
		}
		verdicts := fmt.Sprintf("%d/%d/%d", mm.Verdicts["Bug"], mm.Verdicts["OverlyStrict"], mm.Verdicts["Equivalent"])
		fmt.Printf("  %-28s %7d %20s %6d %6d %7d\n", clip(mm.Model, 28), mm.Jobs, verdicts, fired, edged, cycled)
	}

	if *discriminate {
		suite := eng.Coverage().Discrimination().MinimalSuite()
		fmt.Printf("\n── minimal discriminating suite ──\n")
		fmt.Printf("  %d configs, %d separable pairs, %d inseparable pairs\n",
			suite.Configs, suite.SeparablePairs, len(suite.Inseparable))
		for i, p := range suite.Picks {
			fmt.Printf("  %3d. %-40s separates %d pairs\n", i+1, clip(p.Test, 40), p.Separated)
		}
		if len(suite.Picks) > 0 {
			fmt.Printf("  → %d tests separate every separable pair of %d configs\n", len(suite.Picks), suite.Configs)
		}
		for i, pair := range suite.Inseparable {
			if i >= *topK {
				fmt.Printf("  … %d more inseparable pairs\n", len(suite.Inseparable)-i)
				break
			}
			fmt.Printf("  inseparable: %s ≡ %s (identical verdict vectors)\n", pair[0], pair[1])
		}
	}
}

// cmdCoverageDiff implements `tricheck coverage diff old.json new.json`:
// load two ledger snapshots and report verdict flips and axiom-coverage
// regressions. With -fail, a non-clean diff exits 3 (the CI gate for
// model edits).
func cmdCoverageDiff(args []string) {
	fs := flag.NewFlagSet("coverage diff", flag.ExitOnError)
	failFlag := fs.Bool("fail", false, "exit non-zero (3) when the diff has verdict flips or coverage regressions")
	jsonOut := fs.Bool("json", false, "emit the diff as JSON instead of text")
	fs.Parse(args)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: tricheck coverage diff [-fail] [-json] old.json new.json")
		os.Exit(2)
	}
	old, err := loadSnapshot(fs.Arg(0))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck coverage diff: %v\n", err)
		os.Exit(1)
	}
	cur, err := loadSnapshot(fs.Arg(1))
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck coverage diff: %v\n", err)
		os.Exit(1)
	}
	d := tricheck.DiffCoverage(old, cur)
	if *jsonOut {
		if err := emitJSON("-", d); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck coverage diff: %v\n", err)
			os.Exit(1)
		}
	} else {
		if d.Clean() {
			fmt.Printf("coverage diff: clean (%d vectors only in old, %d only in new)\n", d.OnlyOld, d.OnlyNew)
		}
		for _, f := range d.Flips {
			fmt.Printf("flip: %s on %s: %s → %s\n", f.Test, f.Stack, f.Old, f.New)
		}
		for _, r := range d.Regressions {
			fmt.Printf("regression: model %s lost all %s coverage of axiom %s\n", r.Model, r.Kind, r.Axiom)
		}
		if !d.Clean() {
			fmt.Printf("coverage diff: %d verdict flips, %d coverage regressions\n", len(d.Flips), len(d.Regressions))
		}
	}
	if *failFlag && !d.Clean() {
		os.Exit(3)
	}
}

// loadSnapshot reads a coverage snapshot JSON file (a -coverage-out file
// or a saved GET /v1/coverage body).
func loadSnapshot(path string) (*tricheck.CoverageSnapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s tricheck.CoverageSnapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("parsing snapshot %s: %w", path, err)
	}
	return &s, nil
}

// emitJSON writes v as indented JSON to path ("-" = stdout) — the one
// encoder shared by `coverage -coverage-out`, `coverage diff -json` and
// `top -json`, so every machine-readable report has the same shape
// conventions.
func emitJSON(path string, v any) error {
	var w io.Writer = os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
