// Command tricheck runs the paper's RISC-V case study end to end and
// regenerates the Figure 15 results: every litmus-test family evaluated on
// every Table 7 µspec model, under riscv-curr and riscv-ours, for the Base
// and Base+Atomics ISAs.
//
// Usage:
//
//	tricheck [-family wrc] [-isa base|base+a|both] [-variant curr|ours|both]
//	         [-model-file spec.uspec ...] [-lattice]
//	         [-models] [-mappings] [-csv] [-diagnose] [-workers N]
//	         [-cache file] [-corpus dir] [-export dir] [-progress]
//	         [-profile prefix] [-metrics-out file] [-fail-on-bug]
//	         [-backend uhb|opsim|both] [-fail-on-divergence]
//	         [-fleet URL]
//	tricheck top [-family wrc] [-isa ...] [-variant ...] [-workers N]
//	         [-k 10] [-cycle-sample 64] [-json] [-fleet URL]
//	tricheck coverage [-family wrc] [-isa ...] [-variant ...] [-lattice]
//	         [-model-file spec.uspec ...] [-workers N] [-cache file]
//	         [-discriminate] [-coverage-out file] [-k 10]
//	tricheck coverage diff [-fail] [-json] old.json new.json
//	tricheck models ls [-variant curr|ours|both]
//	tricheck models show <name|file.uspec> [-variant curr|ours]
//	tricheck models lattice [-v]
//
// With no flags it runs the full 1,701-test suite over all 28 stacks on
// the verification farm and prints the Figure 15 tables plus the headline
// per-model totals.
//
// Microarchitecture model flags (a model is data — a µspec spec):
//
//	-model-file f.uspec   verify custom microarchitecture models loaded
//	                      from spec files instead of the Table 7 matrix
//	                      (repeatable; each model pairs with the Figure 15
//	                      mapping of its declared variant)
//	-lattice              sweep every legal microarchitecture of the
//	                      selected variant(s) — the full 50-point (per
//	                      variant) relaxation lattice, not just Table 7
//
// The models subcommand lists the builtin registry (ls), renders one
// model — builtin or spec file — in the spec text format (show), and
// summarizes the legal config lattice with its builtin aliases
// (lattice).
//
// Farm and corpus flags:
//
//	-cache results.json   memoize (test, stack) verdicts in a JSON
//	                      snapshot: the first run writes it, later runs
//	                      re-verify only jobs whose test or stack
//	                      fingerprint changed (a warm identical rerun
//	                      performs zero verifier executions)
//	-corpus dir           verify .litmus files from an on-disk corpus
//	                      instead of the built-in generator suite
//	-export dir           write the selected suite to a corpus directory
//	                      (herd C litmus format) and exit
//	-progress             stream farm progress lines to stderr
//
// Verdict backend flags (the operational second opinion):
//
//	-backend uhb|opsim|both  verdict engine: the axiomatic µhb evaluator
//	                      (default), the operational interleaving
//	                      simulator, or both cross-checked — backend=both
//	                      compares observable-outcome sets per (test,
//	                      stack) and reports any disagreement as a
//	                      Divergence verdict with a trace witness;
//	                      configs without an operational machine are
//	                      skipped (backend=opsim rejects them outright)
//	-fail-on-divergence   exit non-zero (4) when a cross-check divergence
//	                      appears — the self-check CI gate
//
// Observability flags:
//
//	-profile prefix       capture cpu+heap pprof profiles of the sweep to
//	                      PREFIX.{cpu,mem}.pprof (flushed before any
//	                      -fail-on-bug exit)
//	-metrics-out f.json   dump the run's metrics registry — farm, memo
//	                      and per-phase verdict histograms — as JSON
//
// The top subcommand runs the selected sweep on a fresh engine and
// prints a hot-spot cost report: phase totals plus the most expensive
// (test, stack) cells, stacks and tests; -json emits the same report
// machine-readable.
//
// The coverage subcommand runs the selected sweep and reports the
// engine's verification-coverage ledger: which µspec axioms fired edges,
// owned stored (post-dedup) edges and witnessed forbidding cycles, per
// model. -discriminate reduces the (test, config) verdict-vector matrix
// to the minimal suite separating every separable pair of configs
// (greedy set cover); -coverage-out saves the full ledger snapshot as
// JSON; `coverage diff old.json new.json` compares two snapshots,
// flagging verdict flips and axiom-coverage regressions (with -fail as
// a CI gate for model edits).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"tricheck"
	"tricheck/internal/prof"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string { return fmt.Sprint([]string(*m)) }
func (m *multiFlag) Set(v string) error {
	*m = append(*m, v)
	return nil
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "models" {
		cmdModels(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "top" {
		cmdTop(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "coverage" {
		cmdCoverage(os.Args[2:])
		return
	}
	family := flag.String("family", "", "restrict to one litmus family (mp, sb, wrc, rwc, iriw, corr, co-rsdwi, ...)")
	isaFlag := flag.String("isa", "both", "ISA flavour: base, base+a or both")
	variant := flag.String("variant", "both", "MCM version: curr, ours or both")
	var modelFiles multiFlag
	flag.Var(&modelFiles, "model-file", "µspec model spec file to verify instead of the Table 7 matrix (repeatable)")
	lattice := flag.Bool("lattice", false, "sweep every legal microarchitecture config of the selected variant(s), not just Table 7")
	models := flag.Bool("models", false, "print the Table 7 µspec model matrix and exit")
	mappings := flag.Bool("mappings", false, "print the compiler mapping tables (Tables 1-3) and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	diagnose := flag.Bool("diagnose", false, "print a µhb cycle/witness diagnosis for the first bug of each stack")
	workers := flag.Int("workers", 0, "parallel farm workers (0 = GOMAXPROCS)")
	cache := flag.String("cache", "", "memoized result cache snapshot (JSON); loaded if present, saved after the run")
	corpusDir := flag.String("corpus", "", "load litmus tests from this corpus directory instead of the generator")
	export := flag.String("export", "", "export the selected tests to this corpus directory and exit")
	progress := flag.Bool("progress", false, "stream farm progress to stderr")
	profile := flag.String("profile", "", "write cpu/heap pprof profiles to PREFIX.{cpu,mem}.pprof")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics registry (farm, memo, verdict phases) to this file as JSON")
	failOnBug := flag.Bool("fail-on-bug", false, "exit non-zero (3) when any Bug verdict appears — lets CI gate on regressions")
	backendFlag := flag.String("backend", "uhb", "verdict backend: uhb (axiomatic µhb), opsim (operational simulator) or both (cross-check)")
	failOnDivergence := flag.Bool("fail-on-divergence", false, "exit non-zero (4) when backend=both finds a cross-check divergence")
	fleetURL := flag.String("fleet", "", "run the sweep via a remote tricheckd (a -coordinator fleet or a single node) at this base URL instead of in-process")
	flag.Parse()

	if *fleetURL != "" {
		for flagName, set := range map[string]bool{
			"-corpus": *corpusDir != "", "-export": *export != "", "-model-file": len(modelFiles) > 0,
			"-lattice": *lattice, "-cache": *cache != "", "-diagnose": *diagnose,
			"-profile": *profile != "", "-metrics-out": *metricsOut != "",
		} {
			if set {
				fmt.Fprintf(os.Stderr, "tricheck: %s is engine-local and cannot combine with -fleet\n", flagName)
				os.Exit(2)
			}
		}
		runFleet(*fleetURL, fleetOpts{
			family: *family, isa: *isaFlag, variant: *variant, backend: *backendFlag,
			workers: *workers, csv: *csv, progress: *progress,
			failOnBug: *failOnBug, failOnDivergence: *failOnDivergence,
		})
		return
	}

	backend, err := tricheck.ParseBackend(*backendFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(2)
	}

	if *models {
		tricheck.WriteTable7(os.Stdout, tricheck.Curr)
		fmt.Println()
		tricheck.WriteTable7(os.Stdout, tricheck.Ours)
		return
	}
	if *mappings {
		for _, m := range tricheck.Mappings() {
			tricheck.WriteMappingTable(os.Stdout, m)
			fmt.Println()
		}
		return
	}

	var tests []*tricheck.Test
	switch {
	case *corpusDir != "":
		c, err := tricheck.LoadCorpus(*corpusDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
			os.Exit(1)
		}
		if *family == "" {
			tests = c.Tests()
		} else {
			tests = c.Subset(*family)
			if len(tests) == 0 {
				fmt.Fprintf(os.Stderr, "tricheck: corpus %s has no family %q (have %v)\n", *corpusDir, *family, c.Families())
				os.Exit(2)
			}
		}
	case *family == "":
		tests = tricheck.PaperSuite()
	default:
		shape := tricheck.ShapeByName(*family)
		if shape == nil {
			fmt.Fprintf(os.Stderr, "tricheck: unknown family %q\n", *family)
			os.Exit(2)
		}
		tests = shape.Generate()
	}

	if *export != "" {
		n, err := tricheck.ExportCorpus(*export, tests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d tests to %s\n", n, *export)
		return
	}

	variantSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "variant" {
			variantSet = true
		}
	})
	stacks, err := selectStacks(*isaFlag, *variant, variantSet, modelFiles, *lattice)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(2)
	}
	if err := tricheck.ValidateBackendStacks(backend, stacks); err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v (use -backend both to cross-check where possible)\n", err)
		os.Exit(2)
	}

	eng := tricheck.NewEngine()
	if *cache != "" {
		if err := tricheck.LoadMemoSnapshotLenient(eng, *cache, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: loading cache: %v\n", err)
			os.Exit(1)
		}
	}

	psess, err := prof.Begin(*profile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(1)
	}

	var events chan tricheck.Progress
	done := make(chan struct{})
	if *progress {
		events = make(chan tricheck.Progress, 1024)
		go func() {
			tricheck.StreamProgress(os.Stderr, events, 0)
			close(done)
		}()
	} else {
		close(done)
	}
	results, err := eng.SweepStreamBackend(context.Background(), tests, stacks, *workers, backend, events)
	<-done
	// Finalize profiles here, not in a defer: the -fail-on-bug path below
	// exits via os.Exit(3), which would skip defers and truncate the CPU
	// profile. The profile window is exactly the sweep.
	if perr := psess.Stop(); perr != nil {
		fmt.Fprintf(os.Stderr, "tricheck: finalizing profiles: %v\n", perr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(1)
	}

	if *csv {
		tricheck.WriteCSV(os.Stdout, results)
	} else {
		fmt.Printf("TriCheck: %d litmus tests × %d full-stack configurations\n\n", len(tests), len(stacks))
		tricheck.WriteFigure15(os.Stdout, results)
	}

	if *cache != "" {
		if err := eng.SaveMemoSnapshot(*cache); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: saving cache: %v\n", err)
			os.Exit(1)
		}
	}
	stats := eng.LastFarmStats()
	fmt.Fprintf(os.Stderr, "farm: %d jobs (%d unique), %d executed, %d cache hits, %d stolen; %d verifier executions total\n",
		stats.Jobs, stats.Unique, stats.Executed, stats.CacheHits, stats.Stolen, eng.Executions())

	if *diagnose {
		fmt.Println("\n── diagnoses (first bug per stack) ──")
		for _, res := range results {
			for _, r := range res.Results {
				if r.Verdict == tricheck.Bug {
					d, err := eng.Diagnose(r)
					if err != nil {
						fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
						break
					}
					fmt.Println(d)
					break
				}
			}
		}
	}

	// Write metrics before the -fail-on-bug exit so a gating CI run still
	// leaves its telemetry behind for triage.
	if *metricsOut != "" {
		f, err := os.Create(*metricsOut)
		if err == nil {
			err = tricheck.WriteMetricsJSON(f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: writing metrics: %v\n", err)
			os.Exit(1)
		}
	}

	if *failOnBug {
		bugs := 0
		for _, res := range results {
			bugs += res.Tally.Bugs
		}
		if bugs > 0 {
			fmt.Fprintf(os.Stderr, "tricheck: -fail-on-bug: %d Bug verdicts\n", bugs)
			os.Exit(3)
		}
	}
	if divergent := eng.Divergences(); divergent > 0 {
		fmt.Fprintf(os.Stderr, "tricheck: backend cross-check: %d divergence(s) between µhb and opsim\n", divergent)
		if *failOnDivergence {
			os.Exit(4)
		}
	}
}

// selectStacks resolves the sweep's stacks from the three model
// sources: -model-file specs, the -lattice enumeration, or (default)
// the builtin Table 7 matrix via the variant selector.
func selectStacks(isa, variant string, variantSet bool, modelFiles []string, lattice bool) ([]tricheck.Stack, error) {
	switch {
	case len(modelFiles) > 0 && lattice:
		return nil, fmt.Errorf("-model-file and -lattice are mutually exclusive")
	case len(modelFiles) > 0:
		return tricheck.SelectStacksFiles(isa, modelFiles, variantSet)
	case lattice:
		var models []*tricheck.Model
		for _, v := range selectedVariants(variant) {
			for _, c := range tricheck.EnumerateModelConfigs(v) {
				m, err := tricheck.NewModel(c)
				if err != nil {
					return nil, err
				}
				models = append(models, m)
			}
		}
		if models == nil {
			return nil, fmt.Errorf("unknown MCM version %q (want curr, ours or both)", variant)
		}
		return tricheck.SelectStacksModels(isa, models)
	default:
		return tricheck.SelectStacks(isa, variant)
	}
}

// selectedVariants expands a variant selector; unknown selectors yield
// nil (the caller reports the error).
func selectedVariants(variant string) []tricheck.Variant {
	switch variant {
	case "curr":
		return []tricheck.Variant{tricheck.Curr}
	case "ours":
		return []tricheck.Variant{tricheck.Ours}
	case "both":
		return []tricheck.Variant{tricheck.Curr, tricheck.Ours}
	}
	return nil
}

// cmdModels implements the models subcommand: the registry and lattice
// as a user-facing catalog.
func cmdModels(args []string) {
	if len(args) == 0 {
		modelsUsage()
	}
	switch args[0] {
	case "ls":
		fs := flag.NewFlagSet("models ls", flag.ExitOnError)
		variant := fs.String("variant", "both", "MCM version: curr, ours or both")
		fs.Parse(args[1:])
		vs := selectedVariants(*variant)
		if vs == nil {
			fatalModels(fmt.Errorf("unknown MCM version %q", *variant))
		}
		want := map[tricheck.Variant]bool{}
		for _, v := range vs {
			want[v] = true
		}
		fmt.Printf("%-20s %-11s %-32s %s\n", "NAME", "VARIANT", "FINGERPRINT", "DESCRIPTION")
		for _, m := range tricheck.BuiltinModels() {
			if !want[m.Variant] {
				continue
			}
			fmt.Printf("%-20s %-11s %-32s %s\n", m.Name, m.Variant, tricheck.ModelFingerprint(m), m.Description)
		}
	case "show":
		fs := flag.NewFlagSet("models show", flag.ExitOnError)
		variant := fs.String("variant", "curr", "MCM version: curr or ours")
		fs.Parse(args[1:])
		if fs.NArg() < 1 {
			modelsUsage()
		}
		arg := fs.Arg(0)
		// Allow flags after the name too ("show rMM -variant ours").
		fs.Parse(fs.Args()[1:])
		if fs.NArg() != 0 {
			modelsUsage()
		}
		// A readable file wins; otherwise resolve a builtin by name.
		if _, err := os.Stat(arg); err == nil {
			// A spec file carries its own variant: reject an explicit
			// -variant like every other -model-file frontend does.
			fs.Visit(func(f *flag.Flag) {
				if f.Name == "variant" {
					fatalModels(fmt.Errorf("-variant selects builtin models; the spec file %s carries its own variant — drop one of the two", arg))
				}
			})
			models, err := tricheck.LoadModelFiles([]string{arg})
			if err != nil {
				fatalModels(err)
			}
			printSpec(models[0])
			return
		}
		m, err := tricheck.ResolveModel(arg, *variant)
		if err != nil {
			fatalModels(err)
		}
		printSpec(m)
	case "lattice":
		fs := flag.NewFlagSet("models lattice", flag.ExitOnError)
		verbose := fs.Bool("v", false, "list every lattice config with its fingerprint and builtin alias")
		fs.Parse(args[1:])
		builtinBy := map[string]*tricheck.Model{}
		for _, m := range tricheck.BuiltinModels() {
			if _, ok := builtinBy[tricheck.ModelFingerprint(m)]; !ok {
				builtinBy[tricheck.ModelFingerprint(m)] = m
			}
		}
		total := 0
		for _, v := range []tricheck.Variant{tricheck.Curr, tricheck.Ours} {
			cfgs := tricheck.EnumerateModelConfigs(v)
			total += len(cfgs)
			named := 0
			for _, c := range cfgs {
				if _, ok := builtinBy[c.Fingerprint()]; ok {
					named++
				}
			}
			fmt.Printf("%s: %d legal configs (%d shipped as builtins, %d unnamed)\n",
				v, len(cfgs), named, len(cfgs)-named)
			if *verbose {
				for _, c := range cfgs {
					alias := ""
					if b, ok := builtinBy[c.Fingerprint()]; ok {
						alias = "  = " + b.FullName()
					}
					fmt.Printf("  %-24s %s%s\n", c.Name, c.Fingerprint(), alias)
				}
			}
		}
		fmt.Printf("total: %d legal microarchitectures across both variants\n", total)
	default:
		modelsUsage()
	}
}

func printSpec(m *tricheck.Model) {
	fmt.Printf("(* fingerprint %s *)\n", tricheck.ModelFingerprint(m))
	fmt.Print(m.Config.EmitSpec())
}

func fatalModels(err error) {
	fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
	os.Exit(2)
}

func modelsUsage() {
	fmt.Fprintln(os.Stderr, `usage:
  tricheck models ls [-variant curr|ours|both]
  tricheck models show <name|file.uspec> [-variant curr|ours]
  tricheck models lattice [-v]`)
	os.Exit(2)
}
