// Command tricheck runs the paper's RISC-V case study end to end and
// regenerates the Figure 15 results: every litmus-test family evaluated on
// every Table 7 µspec model, under riscv-curr and riscv-ours, for the Base
// and Base+Atomics ISAs.
//
// Usage:
//
//	tricheck [-family wrc] [-isa base|base+a|both] [-variant curr|ours|both]
//	         [-models] [-mappings] [-csv] [-diagnose] [-workers N]
//
// With no flags it runs the full 1,701-test suite over all 28 stacks and
// prints the Figure 15 tables plus the headline per-model totals.
package main

import (
	"flag"
	"fmt"
	"os"

	"tricheck"
)

func main() {
	family := flag.String("family", "", "restrict to one litmus family (mp, sb, wrc, rwc, iriw, corr, co-rsdwi, ...)")
	isaFlag := flag.String("isa", "both", "ISA flavour: base, base+a or both")
	variant := flag.String("variant", "both", "MCM version: curr, ours or both")
	models := flag.Bool("models", false, "print the Table 7 µspec model matrix and exit")
	mappings := flag.Bool("mappings", false, "print the compiler mapping tables (Tables 1-3) and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	diagnose := flag.Bool("diagnose", false, "print a µhb cycle/witness diagnosis for the first bug of each stack")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	flag.Parse()

	if *models {
		tricheck.WriteTable7(os.Stdout, tricheck.Curr)
		fmt.Println()
		tricheck.WriteTable7(os.Stdout, tricheck.Ours)
		return
	}
	if *mappings {
		for _, m := range tricheck.Mappings() {
			tricheck.WriteMappingTable(os.Stdout, m)
			fmt.Println()
		}
		return
	}

	var tests []*tricheck.Test
	if *family == "" {
		tests = tricheck.PaperSuite()
	} else {
		shape := tricheck.ShapeByName(*family)
		if shape == nil {
			fmt.Fprintf(os.Stderr, "tricheck: unknown family %q\n", *family)
			os.Exit(2)
		}
		tests = shape.Generate()
	}

	var stacks []tricheck.Stack
	addISA := func(base bool) {
		if *variant == "curr" || *variant == "both" {
			stacks = append(stacks, tricheck.RISCVStacks(base, tricheck.Curr)...)
		}
		if *variant == "ours" || *variant == "both" {
			stacks = append(stacks, tricheck.RISCVStacks(base, tricheck.Ours)...)
		}
	}
	if *isaFlag == "base" || *isaFlag == "both" {
		addISA(true)
	}
	if *isaFlag == "base+a" || *isaFlag == "both" {
		addISA(false)
	}
	if len(stacks) == 0 {
		fmt.Fprintln(os.Stderr, "tricheck: no stacks selected")
		os.Exit(2)
	}

	eng := tricheck.NewEngine()
	results, err := eng.Sweep(tests, stacks, *workers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(1)
	}
	if *csv {
		tricheck.WriteCSV(os.Stdout, results)
	} else {
		fmt.Printf("TriCheck: %d litmus tests × %d full-stack configurations\n\n", len(tests), len(stacks))
		tricheck.WriteFigure15(os.Stdout, results)
	}
	if *diagnose {
		fmt.Println("\n── diagnoses (first bug per stack) ──")
		for _, res := range results {
			for _, r := range res.Results {
				if r.Verdict == tricheck.Bug {
					d, err := eng.Diagnose(r)
					if err != nil {
						fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
						break
					}
					fmt.Println(d)
					break
				}
			}
		}
	}
}
