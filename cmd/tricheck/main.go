// Command tricheck runs the paper's RISC-V case study end to end and
// regenerates the Figure 15 results: every litmus-test family evaluated on
// every Table 7 µspec model, under riscv-curr and riscv-ours, for the Base
// and Base+Atomics ISAs.
//
// Usage:
//
//	tricheck [-family wrc] [-isa base|base+a|both] [-variant curr|ours|both]
//	         [-models] [-mappings] [-csv] [-diagnose] [-workers N]
//	         [-cache file] [-corpus dir] [-export dir] [-progress]
//	         [-fail-on-bug]
//
// With no flags it runs the full 1,701-test suite over all 28 stacks on
// the verification farm and prints the Figure 15 tables plus the headline
// per-model totals.
//
// Farm and corpus flags:
//
//	-cache results.json   memoize (test, stack) verdicts in a JSON
//	                      snapshot: the first run writes it, later runs
//	                      re-verify only jobs whose test or stack
//	                      fingerprint changed (a warm identical rerun
//	                      performs zero verifier executions)
//	-corpus dir           verify .litmus files from an on-disk corpus
//	                      instead of the built-in generator suite
//	-export dir           write the selected suite to a corpus directory
//	                      (herd C litmus format) and exit
//	-progress             stream farm progress lines to stderr
package main

import (
	"flag"
	"fmt"
	"os"

	"tricheck"
)

func main() {
	family := flag.String("family", "", "restrict to one litmus family (mp, sb, wrc, rwc, iriw, corr, co-rsdwi, ...)")
	isaFlag := flag.String("isa", "both", "ISA flavour: base, base+a or both")
	variant := flag.String("variant", "both", "MCM version: curr, ours or both")
	models := flag.Bool("models", false, "print the Table 7 µspec model matrix and exit")
	mappings := flag.Bool("mappings", false, "print the compiler mapping tables (Tables 1-3) and exit")
	csv := flag.Bool("csv", false, "emit CSV instead of formatted tables")
	diagnose := flag.Bool("diagnose", false, "print a µhb cycle/witness diagnosis for the first bug of each stack")
	workers := flag.Int("workers", 0, "parallel farm workers (0 = GOMAXPROCS)")
	cache := flag.String("cache", "", "memoized result cache snapshot (JSON); loaded if present, saved after the run")
	corpusDir := flag.String("corpus", "", "load litmus tests from this corpus directory instead of the generator")
	export := flag.String("export", "", "export the selected tests to this corpus directory and exit")
	progress := flag.Bool("progress", false, "stream farm progress to stderr")
	failOnBug := flag.Bool("fail-on-bug", false, "exit non-zero (3) when any Bug verdict appears — lets CI gate on regressions")
	flag.Parse()

	if *models {
		tricheck.WriteTable7(os.Stdout, tricheck.Curr)
		fmt.Println()
		tricheck.WriteTable7(os.Stdout, tricheck.Ours)
		return
	}
	if *mappings {
		for _, m := range tricheck.Mappings() {
			tricheck.WriteMappingTable(os.Stdout, m)
			fmt.Println()
		}
		return
	}

	var tests []*tricheck.Test
	switch {
	case *corpusDir != "":
		c, err := tricheck.LoadCorpus(*corpusDir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
			os.Exit(1)
		}
		if *family == "" {
			tests = c.Tests()
		} else {
			tests = c.Subset(*family)
			if len(tests) == 0 {
				fmt.Fprintf(os.Stderr, "tricheck: corpus %s has no family %q (have %v)\n", *corpusDir, *family, c.Families())
				os.Exit(2)
			}
		}
	case *family == "":
		tests = tricheck.PaperSuite()
	default:
		shape := tricheck.ShapeByName(*family)
		if shape == nil {
			fmt.Fprintf(os.Stderr, "tricheck: unknown family %q\n", *family)
			os.Exit(2)
		}
		tests = shape.Generate()
	}

	if *export != "" {
		n, err := tricheck.ExportCorpus(*export, tests)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d tests to %s\n", n, *export)
		return
	}

	stacks, err := tricheck.SelectStacks(*isaFlag, *variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(2)
	}

	eng := tricheck.NewEngine()
	if *cache != "" {
		if err := tricheck.LoadMemoSnapshotLenient(eng, *cache, os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: loading cache: %v\n", err)
			os.Exit(1)
		}
	}

	var events chan tricheck.Progress
	done := make(chan struct{})
	if *progress {
		events = make(chan tricheck.Progress, 1024)
		go func() {
			tricheck.StreamProgress(os.Stderr, events, 0)
			close(done)
		}()
	} else {
		close(done)
	}
	results, err := eng.SweepStream(tests, stacks, *workers, events)
	<-done
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: %v\n", err)
		os.Exit(1)
	}

	if *csv {
		tricheck.WriteCSV(os.Stdout, results)
	} else {
		fmt.Printf("TriCheck: %d litmus tests × %d full-stack configurations\n\n", len(tests), len(stacks))
		tricheck.WriteFigure15(os.Stdout, results)
	}

	if *cache != "" {
		if err := eng.SaveMemoSnapshot(*cache); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck: saving cache: %v\n", err)
			os.Exit(1)
		}
	}
	stats := eng.LastFarmStats()
	fmt.Fprintf(os.Stderr, "farm: %d jobs (%d unique), %d executed, %d cache hits, %d stolen; %d verifier executions total\n",
		stats.Jobs, stats.Unique, stats.Executed, stats.CacheHits, stats.Stolen, eng.Executions())

	if *diagnose {
		fmt.Println("\n── diagnoses (first bug per stack) ──")
		for _, res := range results {
			for _, r := range res.Results {
				if r.Verdict == tricheck.Bug {
					d, err := eng.Diagnose(r)
					if err != nil {
						fmt.Fprintf(os.Stderr, "diagnose: %v\n", err)
						break
					}
					fmt.Println(d)
					break
				}
			}
		}
	}

	if *failOnBug {
		bugs := 0
		for _, res := range results {
			bugs += res.Tally.Bugs
		}
		if bugs > 0 {
			fmt.Fprintf(os.Stderr, "tricheck: -fail-on-bug: %d Bug verdicts\n", bugs)
			os.Exit(3)
		}
	}
}
