package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"tricheck"
)

// cmdTop implements `tricheck top`: run a sweep on a fresh engine (no
// memo cache — every job executes, so every job is costed) and print a
// hot-spot report from the engine's per-(test, stack) cost matrix:
// where the verification time went, by phase, stack and test.
func cmdTop(args []string) {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	family := fs.String("family", "", "restrict to one litmus family (mp, sb, wrc, ...)")
	isaFlag := fs.String("isa", "both", "ISA flavour: base, base+a or both")
	variant := fs.String("variant", "both", "MCM version: curr, ours or both")
	workers := fs.Int("workers", 0, "parallel farm workers (0 = GOMAXPROCS)")
	topK := fs.Int("k", 10, "rows per ranking table")
	cycleSample := fs.Int("cycle-sample", 64, "time 1-in-N innermost-loop cycle checks (0 = off); top is a diagnostic run, so sampling defaults on")
	jsonOut := fs.Bool("json", false, "emit the hot-spot report as JSON instead of tables")
	fleetURL := fs.String("fleet", "", "report a running coordinator's fleet dispatch stats from its /v1/stats instead of a local sweep")
	fs.Parse(args)

	if *fleetURL != "" {
		runFleetTop(*fleetURL)
		return
	}

	var tests []*tricheck.Test
	if *family == "" {
		tests = tricheck.PaperSuite()
	} else {
		shape := tricheck.ShapeByName(*family)
		if shape == nil {
			fmt.Fprintf(os.Stderr, "tricheck top: unknown family %q\n", *family)
			os.Exit(2)
		}
		tests = shape.Generate()
	}
	stacks, err := tricheck.SelectStacks(*isaFlag, *variant)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck top: %v\n", err)
		os.Exit(2)
	}

	tricheck.SetCycleSampling(*cycleSample)
	eng := tricheck.NewEngine()
	start := time.Now()
	if _, err := eng.SweepStream(tests, stacks, *workers, nil); err != nil {
		fmt.Fprintf(os.Stderr, "tricheck top: %v\n", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	costs := eng.CostMatrix()
	if len(costs) == 0 {
		fmt.Println("tricheck top: no executed jobs (nothing to rank)")
		return
	}
	reuse, rebuild := tricheck.IncrementalStats()
	reuseRatio := 0.0
	if reuse+rebuild > 0 {
		reuseRatio = float64(reuse) / float64(reuse+rebuild)
	}
	var total, hll, compile, skeleton, enumerate time.Duration
	for _, c := range costs {
		total += c.Total
		hll += c.HLL
		compile += c.Compile
		skeleton += c.Skeleton
		enumerate += c.Enumerate
	}

	if *jsonOut {
		rep := topReport{
			Tests:          len(tests),
			Stacks:         len(stacks),
			Jobs:           len(costs),
			ElapsedSeconds: elapsed.Seconds(),
			Phases: map[string]float64{
				"hll":       hll.Seconds(),
				"compile":   compile.Seconds(),
				"skeleton":  skeleton.Seconds(),
				"enumerate": enumerate.Seconds(),
				"total":     total.Seconds(),
			},
			IncrementalReuse:   reuse,
			IncrementalRebuild: rebuild,
			IncrementalRatio:   reuseRatio,
		}
		for i, c := range costs {
			if i >= *topK {
				break
			}
			rep.Cells = append(rep.Cells, topCell{
				Test: c.Test, Stack: c.Stack,
				TotalSeconds:     c.Total.Seconds(),
				HLLSeconds:       c.HLL.Seconds(),
				SkeletonSeconds:  c.Skeleton.Seconds(),
				EnumerateSeconds: c.Enumerate.Seconds(),
				Candidates:       c.Candidates,
				Graphs:           c.Graphs,
			})
		}
		rep.TopStacks = jsonGroups(groupBy(costs, func(c tricheck.JobCost) string { return c.Stack }), *topK)
		rep.TopTests = jsonGroups(groupBy(costs, func(c tricheck.JobCost) string { return c.Test }), *topK)
		if err := emitJSON("-", rep); err != nil {
			fmt.Fprintf(os.Stderr, "tricheck top: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("tricheck top: %d tests × %d stacks, %d costed jobs, %s wall (%s cpu across workers)\n\n",
		len(tests), len(stacks), len(costs), elapsed.Round(time.Millisecond), total.Round(time.Millisecond))

	fmt.Println("── phase totals ──")
	phase := func(name string, d time.Duration) {
		fmt.Printf("  %-10s %10s  %5.1f%%\n", name, d.Round(time.Microsecond), pct(d, total))
	}
	phase("hll", hll)
	phase("compile", compile)
	phase("skeleton", skeleton)
	phase("enumerate", enumerate)
	phase("other", total-hll-compile-skeleton-enumerate)

	fmt.Printf("\n── incremental µhb engine ──\n")
	fmt.Printf("  order reused   %12d\n", reuse)
	fmt.Printf("  order rebuilt  %12d\n", rebuild)
	fmt.Printf("  reuse ratio    %11.1f%%\n", 100*reuseRatio)

	fmt.Printf("\n── top %d (test, stack) cells ──\n", *topK)
	fmt.Printf("  %-28s %-26s %10s %6s %9s %9s %8s %8s\n",
		"TEST", "STACK", "TOTAL", "%", "HLL", "SKEL", "ENUM", "GRAPHS")
	for i, c := range costs {
		if i >= *topK {
			break
		}
		fmt.Printf("  %-28s %-26s %10s %5.1f%% %9s %9s %8s %8d\n",
			clip(c.Test, 28), clip(c.Stack, 26), c.Total.Round(time.Microsecond), pct(c.Total, total),
			c.HLL.Round(time.Microsecond), c.Skeleton.Round(time.Microsecond),
			c.Enumerate.Round(time.Microsecond), c.Graphs)
	}

	fmt.Printf("\n── top %d stacks ──\n", *topK)
	printGroup(groupBy(costs, func(c tricheck.JobCost) string { return c.Stack }), *topK, total)

	fmt.Printf("\n── top %d tests ──\n", *topK)
	printGroup(groupBy(costs, func(c tricheck.JobCost) string { return c.Test }), *topK, total)
}

// topReport is the -json form of the hot-spot report (emitJSON encoder,
// shared with `coverage -coverage-out`).
type topReport struct {
	Tests          int                `json:"tests"`
	Stacks         int                `json:"stacks"`
	Jobs           int                `json:"jobs"`
	ElapsedSeconds float64            `json:"elapsed_seconds"`
	Phases         map[string]float64 `json:"phase_seconds"`
	// Incremental µhb engine effectiveness over the run: candidate
	// verdicts that reused the maintained topological order vs. rebuilt.
	IncrementalReuse   uint64     `json:"incremental_reuse"`
	IncrementalRebuild uint64     `json:"incremental_rebuild"`
	IncrementalRatio   float64    `json:"incremental_reuse_ratio"`
	Cells              []topCell  `json:"cells"`
	TopStacks          []topGroup `json:"top_stacks"`
	TopTests           []topGroup `json:"top_tests"`
}

// topCell is one machine-readable (test, stack) cost cell.
type topCell struct {
	Test             string  `json:"test"`
	Stack            string  `json:"stack"`
	TotalSeconds     float64 `json:"total_seconds"`
	HLLSeconds       float64 `json:"hll_seconds"`
	SkeletonSeconds  float64 `json:"skeleton_seconds"`
	EnumerateSeconds float64 `json:"enumerate_seconds"`
	Candidates       int     `json:"candidates"`
	Graphs           int     `json:"graphs"`
}

// topGroup is one machine-readable aggregated ranking row.
type topGroup struct {
	Name         string  `json:"name"`
	TotalSeconds float64 `json:"total_seconds"`
	Jobs         int     `json:"jobs"`
	Graphs       int     `json:"graphs"`
}

// jsonGroups projects the top K ranking rows into wire form.
func jsonGroups(groups []groupCost, k int) []topGroup {
	out := make([]topGroup, 0, k)
	for i, g := range groups {
		if i >= k {
			break
		}
		out = append(out, topGroup{Name: g.name, TotalSeconds: g.total.Seconds(), Jobs: g.jobs, Graphs: g.graphs})
	}
	return out
}

// groupCost is one aggregated ranking row.
type groupCost struct {
	name   string
	total  time.Duration
	jobs   int
	graphs int
}

func groupBy(costs []tricheck.JobCost, key func(tricheck.JobCost) string) []groupCost {
	byKey := map[string]*groupCost{}
	for _, c := range costs {
		k := key(c)
		g := byKey[k]
		if g == nil {
			g = &groupCost{name: k}
			byKey[k] = g
		}
		g.total += c.Total
		g.jobs += c.Count
		g.graphs += c.Graphs
	}
	out := make([]groupCost, 0, len(byKey))
	for _, g := range byKey {
		out = append(out, *g)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].total != out[j].total {
			return out[i].total > out[j].total
		}
		return out[i].name < out[j].name
	})
	return out
}

func printGroup(groups []groupCost, k int, total time.Duration) {
	fmt.Printf("  %-34s %10s %6s %7s %10s\n", "NAME", "TOTAL", "%", "JOBS", "GRAPHS")
	for i, g := range groups {
		if i >= k {
			break
		}
		fmt.Printf("  %-34s %10s %5.1f%% %7d %10d\n",
			clip(g.name, 34), g.total.Round(time.Microsecond), pct(g.total, total), g.jobs, g.graphs)
	}
}

func pct(d, total time.Duration) float64 {
	if total <= 0 {
		return 0
	}
	return 100 * float64(d) / float64(total)
}

func clip(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}
