package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tricheck"
)

// buildOnce compiles the tricheck binary once per test process.
var buildOnce = sync.Once{}
var builtBin string
var buildErr error

func tricheckBin(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "tricheck-e2e-")
		if err != nil {
			buildErr = err
			return
		}
		builtBin = filepath.Join(dir, "tricheck")
		out, err := exec.Command("go", "build", "-o", builtBin, ".").CombinedOutput()
		if err != nil {
			buildErr = err
			builtBin = string(out)
		}
	})
	if buildErr != nil {
		t.Fatalf("building tricheck: %v\n%s", buildErr, builtBin)
	}
	return builtBin
}

// scSpecFile writes the SC-machine µspec config (the profile the
// miswire hook targets) to a spec file and returns its path.
func scSpecFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "sc.uspec")
	spec := tricheck.SCProofModel().Config.EmitSpec()
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	if ee, ok := err.(*exec.ExitError); ok {
		return ee.ExitCode()
	}
	return -1
}

// TestCLIFailOnDivergence is the divergence-path e2e: with the opsim
// driver deliberately miswired via the env hook, a backend=both sweep
// must report the cross-check disagreement (not crash) and
// -fail-on-divergence must exit 4.
func TestCLIFailOnDivergence(t *testing.T) {
	bin := tricheckBin(t)
	spec := scSpecFile(t)
	cmd := exec.Command(bin, "-family", "sb", "-isa", "base", "-backend", "both", "-fail-on-divergence", "-model-file", spec)
	cmd.Env = append(os.Environ(), "TRICHECK_OPSIM_MISWIRE=1")
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != 4 {
		t.Fatalf("exit code %d, want 4\n%s", code, out)
	}
	if !strings.Contains(string(out), "divergence") {
		t.Fatalf("output does not mention the divergence:\n%s", out)
	}
}

// TestCLIBackendBothClean: the same sweep without the miswire hook
// cross-checks cleanly — exit 0, no divergence note.
func TestCLIBackendBothClean(t *testing.T) {
	bin := tricheckBin(t)
	spec := scSpecFile(t)
	cmd := exec.Command(bin, "-family", "sb", "-isa", "base", "-backend", "both", "-fail-on-divergence", "-model-file", spec)
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != 0 {
		t.Fatalf("exit code %d, want 0\n%s", code, out)
	}
	if strings.Contains(string(out), "divergence") {
		t.Fatalf("clean cross-check reported a divergence:\n%s", out)
	}
}

// TestCLIBackendOpsimRejectsUnsupported: backend=opsim over the builtin
// curr matrix (which includes configs with no operational machine) is a
// usage error, not a partial sweep.
func TestCLIBackendOpsimRejectsUnsupported(t *testing.T) {
	bin := tricheckBin(t)
	cmd := exec.Command(bin, "-family", "mp", "-isa", "base", "-backend", "opsim", "-variant", "curr")
	out, err := cmd.CombinedOutput()
	if code := exitCode(err); code != 2 {
		t.Fatalf("exit code %d, want 2\n%s", code, out)
	}
	if !strings.Contains(string(out), "backend") {
		t.Fatalf("error does not mention the backend:\n%s", out)
	}
}
