package main

import (
	"context"
	"fmt"
	"os"

	"tricheck/client"
	"tricheck/internal/report"
)

// fleetOpts carries the subset of the CLI's flags a remote sweep can
// honor; everything engine-local (corpus dirs, model files, profiles,
// caches) has no remote equivalent and is rejected up front.
type fleetOpts struct {
	family, isa, variant, backend string
	workers                       int
	csv                           bool
	progress                      bool
	failOnBug                     bool
	failOnDivergence              bool
}

// runFleet drives the selected sweep through a remote tricheckd —
// typically a fleet coordinator, but any single node works too — and
// renders the merged summary in the CLI's usual CSV/table forms.
func runFleet(url string, opts fleetOpts) {
	req := client.Request{
		ISA:     opts.isa,
		Variant: opts.variant,
		Workers: opts.workers,
	}
	if opts.backend != "" && opts.backend != "uhb" {
		req.Backend = opts.backend
	}
	if opts.family == "" {
		req.Suite = "paper"
	} else {
		req.Family = opts.family
	}

	c := client.New(url)
	seen := 0
	sum, err := c.Verify(context.Background(), req, func(v client.Verdict) error {
		seen++
		if opts.progress && (seen%500 == 0 || v.Done == v.Total) {
			fmt.Fprintf(os.Stderr, "fleet: %d/%d\r", v.Done, v.Total)
		}
		return nil
	})
	if opts.progress && seen > 0 {
		fmt.Fprintln(os.Stderr)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck: fleet sweep via %s: %v\n", url, err)
		os.Exit(1)
	}

	if opts.csv {
		report.SummaryCSV(os.Stdout, sum)
	} else {
		fmt.Printf("TriCheck fleet sweep via %s\n\n", url)
		report.SummaryTable(os.Stdout, sum)
	}

	if opts.failOnBug && sum.Bugs > 0 {
		fmt.Fprintf(os.Stderr, "tricheck: -fail-on-bug: %d Bug verdicts\n", sum.Bugs)
		os.Exit(3)
	}
	if sum.Divergent > 0 {
		fmt.Fprintf(os.Stderr, "tricheck: backend cross-check: %d divergence(s) between µhb and opsim\n", sum.Divergent)
		if opts.failOnDivergence {
			os.Exit(4)
		}
	}
}

// runFleetTop renders a coordinator's fleet stats block — the remote
// counterpart of `tricheck top`'s local hot-spot report.
func runFleetTop(url string) {
	c := client.New(url)
	st, err := c.Stats(context.Background())
	if err != nil {
		fmt.Fprintf(os.Stderr, "tricheck top: fleet stats via %s: %v\n", url, err)
		os.Exit(1)
	}
	fmt.Printf("tricheckd %s: %d requests, %d verdicts streamed, %.0f tests/sec lifetime\n",
		url, st.RequestsTotal, st.VerdictsStreamed, st.TestsPerSecond)
	if st.Fleet == nil {
		fmt.Println("not a coordinator (no fleet block) — point -fleet at a tricheckd started with -coordinator")
		return
	}
	report.FleetStats(os.Stdout, st.Fleet)
}
