// Command tricheckd serves the TriCheck toolflow as a long-running HTTP
// verification service: one shared engine (warm memo cache, pooled µhb
// overlays, singleflighted C11 evaluation) behind a streaming NDJSON
// API.
//
// Usage:
//
//	tricheckd [-addr HOST:PORT] [-cache FILE] [-max-inflight N] [-max-workers N]
//	          [-pprof] [-trace-sample N] [-cycle-sample N]
//	tricheckd -coordinator -worker http://w1:8321,http://w2:8321[,...]
//	          [-hedge-after D] [-probe-interval D] [-vnodes N]
//
// In coordinator mode /v1/verify shards each sweep across the worker
// tricheckds by consistent-hashed memo key, hedges slow or dead shards
// to the next ring node, and merges the worker streams into one
// wire-compatible NDJSON stream. Workers are plain tricheckds; their
// /v1/memo/snapshot + /v1/memo/load endpoints let the coordinator
// warm-start a (re)joining worker from its peers' memo caches.
//
// Endpoints:
//
//	POST /v1/verify  {"family":"mp","isa":"both","variant":"both"} →
//	                 NDJSON verdict records + terminal summary; every
//	                 record carries the request's trace ID
//	GET  /v1/stats   service + engine + cache counters
//	GET  /v1/traces  slowest retained spans (requests + sampled jobs)
//	GET  /metrics    Prometheus text exposition
//	GET  /debug/vars expvar
//	GET  /debug/pprof/*  runtime profiles (only with -pprof)
//	GET  /healthz    liveness
//
// On SIGINT/SIGTERM the server shuts down gracefully — in-flight
// streams finish — and, when -cache is set, flushes the memo cache
// snapshot so the next boot serves repeat sweeps with zero verifier
// executions.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tricheck/internal/fleet"
	"tricheck/internal/obs"
	"tricheck/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8321", "listen address")
	cache := flag.String("cache", "", "memo-cache snapshot (JSON): loaded at boot, flushed on shutdown")
	maxInflight := flag.Int("max-inflight", 4, "maximum concurrently-sweeping requests (further requests queue)")
	maxWorkers := flag.Int("max-workers", 0, "per-request farm worker budget (0 = GOMAXPROCS)")
	memoCap := flag.Int("memo-cap", 0, "memo-cache LRU capacity in (test, stack) entries (0 = default, several full paper sweeps)")
	shutdownGrace := flag.Duration("shutdown-grace", 30*time.Second, "graceful-shutdown deadline for in-flight streams")
	enablePprof := flag.Bool("pprof", false, "mount /debug/pprof/ (exposes process internals; off by default)")
	traceSample := flag.Int("trace-sample", 16, "retain a span for 1-in-N verdict jobs (0 = requests only)")
	cycleSample := flag.Int("cycle-sample", 0, "time 1-in-N innermost-loop cycle checks (0 = off, the zero-overhead default)")
	coordinator := flag.Bool("coordinator", false, "run as a fleet coordinator: shard /v1/verify sweeps across -worker tricheckds")
	workerURLs := flag.String("worker", "", "comma-separated worker tricheckd base URLs (coordinator mode)")
	hedgeAfter := flag.Duration("hedge-after", 10*time.Second, "hedge a shard's remaining jobs to the next ring node after this long without a record (coordinator mode)")
	probeInterval := flag.Duration("probe-interval", 3*time.Second, "worker /healthz probe cadence (coordinator mode)")
	vnodes := flag.Int("vnodes", 0, "virtual nodes per worker on the consistent-hash ring (0 = 64; coordinator mode)")
	flag.Parse()

	obs.SetVerdictSampling(*traceSample)
	obs.SetCycleSampling(*cycleSample)
	logger := log.New(os.Stderr, "tricheckd: ", log.LstdFlags)
	cfg := server.Config{
		CachePath:    *cache,
		MaxInFlight:  *maxInflight,
		MaxWorkers:   *maxWorkers,
		MemoCapacity: *memoCap,
		EnablePprof:  *enablePprof,
		Log:          logger,
	}
	if *coordinator {
		if *workerURLs == "" {
			logger.Fatal("-coordinator requires -worker with at least one worker URL")
		}
		cfg.Fleet = &fleet.Config{
			Workers:       strings.Split(*workerURLs, ","),
			HedgeAfter:    *hedgeAfter,
			ProbeInterval: *probeInterval,
			Vnodes:        *vnodes,
			Log:           logger,
		}
	} else if *workerURLs != "" {
		logger.Fatal("-worker only makes sense with -coordinator")
	}
	srv, err := server.New(cfg)
	if err != nil {
		logger.Fatal(err)
	}

	// No WriteTimeout: verify streams are long-lived by design, and the
	// handler applies its own per-record write deadlines; the header
	// timeout covers slowloris-style stalls before a request starts.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (max-inflight=%d, cache=%q)", *addr, *maxInflight, *cache)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if coord := srv.Fleet(); coord != nil {
		logger.Printf("coordinator over %d workers (hedge-after=%s)", len(coord.Workers()), *hedgeAfter)
		go coord.Run(ctx)
	}
	select {
	case <-ctx.Done():
		logger.Printf("signal received, shutting down")
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		logger.Printf("shutdown: %v (closing)", err)
		httpSrv.Close()
	}
	if err := srv.SaveSnapshot(); err != nil {
		logger.Fatalf("flushing cache: %v", err)
	}
	logger.Printf("bye")
}
