// Command herdc11 evaluates a litmus test under the C11 axiomatic memory
// model (toolflow step 1 — the role Herd's C11 model plays in the paper)
// and prints the allowed and forbidden final states.
//
// Usage:
//
//	herdc11 -test 'wrc[rlx,rlx,rel,acq,rlx]'
//	herdc11 -shape mp        # evaluate every variant, print verdict counts
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"tricheck"
	"tricheck/internal/c11"
	"tricheck/internal/litmus"
)

func main() {
	testName := flag.String("test", "", "one variant, e.g. 'wrc[rlx,rlx,rel,acq,rlx]'")
	shapeName := flag.String("shape", "", "evaluate every variant of a shape")
	file := flag.String("file", "", "read a test in the textual litmus format")
	flag.Parse()

	switch {
	case *file != "":
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintf(os.Stderr, "herdc11: %v\n", err)
			os.Exit(2)
		}
		t, err := litmus.Parse(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "herdc11: %v\n", err)
			os.Exit(2)
		}
		evaluateOne(t)
	case *testName != "":
		t, err := litmus.ParseVariantName(*testName)
		if err != nil {
			fmt.Fprintf(os.Stderr, "herdc11: %v\n", err)
			os.Exit(2)
		}
		evaluateOne(t)
	case *shapeName != "":
		s := tricheck.ShapeByName(*shapeName)
		if s == nil {
			fmt.Fprintf(os.Stderr, "herdc11: unknown shape %q\n", *shapeName)
			os.Exit(2)
		}
		forbidden := 0
		for _, t := range s.Generate() {
			res, err := c11.Evaluate(t.Prog)
			if err != nil {
				fmt.Fprintf(os.Stderr, "herdc11: %s: %v\n", t.Name, err)
				os.Exit(1)
			}
			if !res.Allowed[t.Specified] {
				forbidden++
				fmt.Printf("forbidden: %s\n", t.Name)
			}
		}
		fmt.Printf("%s: interesting outcome forbidden in %d of %d variants\n",
			s.Name, forbidden, s.Variants())
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// evaluateOne runs the C11 model on one test and prints every outcome.
func evaluateOne(t *litmus.Test) {
	res, err := c11.Evaluate(t.Prog)
	if err != nil {
		fmt.Fprintf(os.Stderr, "herdc11: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("%s\n%s", t.Name, t.Prog.String())
	if res.Racy {
		fmt.Println("RACY: program has undefined behaviour; all outcomes allowed")
	}
	var outs []string
	for o := range res.All {
		outs = append(outs, string(o))
	}
	sort.Strings(outs)
	for _, o := range outs {
		verdict := "forbidden"
		if res.Allowed[tricheck.Outcome(o)] {
			verdict = "allowed"
		}
		marker := "  "
		if tricheck.Outcome(o) == t.Specified {
			marker = "* "
		}
		fmt.Printf("%s%-9s %s\n", marker, verdict, o)
	}
	fmt.Printf("(%d candidate executions, %d C11-consistent; * = the test's interesting outcome)\n",
		res.Candidates, res.Consistent)
}
