// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, regenerating the corresponding rows/series. Custom metrics
// report the reproduced quantities (bug counts, overheads) so a bench run
// doubles as a results table:
//
//	go test -bench=. -benchmem
//
// Absolute wall-clock numbers are not comparable to the paper (its
// substrate was Herd + Check + phone silicon; ours is a pure-Go
// reimplementation), but every reported metric should match the shapes
// recorded in EXPERIMENTS.md.
//
// The two-tier evaluation-core refactor (static µhb skeletons + pooled
// per-execution overlays) changes only ns/op and allocs/op here; every
// reported metric (bugs, strict, tests, headline counts) is bit-identical
// to the single-graph evaluator it replaced. CI runs the Figure-15, farm,
// synth and stack-resolution benchmarks with -benchmem and archives the
// raw JSON as the BENCH_6.json artifact (deltas rendered against the
// committed BENCH_5.json), accumulating the perf trajectory across PRs.
// BENCH_5 predates the obs instrumentation, so the delta also bounds the
// telemetry overhead on the sweep paths.
package tricheck_test

import (
	"context"
	"testing"

	"tricheck"
	"tricheck/internal/sieve"
	"tricheck/internal/timing"
)

// BenchmarkFigure2Sieve regenerates Figure 2's three runtime series
// (relaxed / relaxed+fix / SC atomics, 1–8 threads) on the simulated
// multicore and reports the two headline ratios at 8 threads.
func BenchmarkFigure2Sieve(b *testing.B) {
	var pts []sieve.Figure2Point
	for i := 0; i < b.N; i++ {
		pts = sieve.Figure2(200000, 8, timing.DefaultConfig())
	}
	last := pts[len(pts)-1]
	b.ReportMetric(100*last.FixOverhead, "fix-overhead-%@8t")
	b.ReportMetric(100*last.SCOverFixed, "sc-over-fix-%@8t")
}

// benchFamily sweeps one litmus family over a stack and reports bug counts.
func benchFamily(b *testing.B, shape *tricheck.Shape, s tricheck.Stack) {
	b.Helper()
	eng := tricheck.NewEngine()
	tests := shape.Generate()
	var bugs, strict int
	for i := 0; i < b.N; i++ {
		res, err := eng.RunSuite(tests, s, 0)
		if err != nil {
			b.Fatal(err)
		}
		bugs, strict = res.Tally.SpecifiedBugs, res.Tally.Strict
	}
	b.ReportMetric(float64(bugs), "bugs")
	b.ReportMetric(float64(strict), "strict")
	b.ReportMetric(float64(len(tests)), "tests")
}

// Figure 15, panel 1: wrc (and rwc) on Base, riscv-curr vs riscv-ours.
// The nMM rows are the interesting ones (108 and 2 bugs respectively).
func BenchmarkFigure15WRCBaseCurr(b *testing.B) {
	benchFamily(b, tricheck.WRC, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

func BenchmarkFigure15WRCBaseOurs(b *testing.B) {
	benchFamily(b, tricheck.WRC, tricheck.Stack{
		Mapping: tricheck.RISCVBaseRefined, Model: tricheck.NMM(tricheck.Ours)})
}

func BenchmarkFigure15RWCBaseCurr(b *testing.B) {
	benchFamily(b, tricheck.RWC, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

// Figure 15, panel 1 (right half): wrc on Base+A — 72 bugs under
// riscv-curr (non-cumulative releases), 0 under riscv-ours.
func BenchmarkFigure15WRCAtomicsCurr(b *testing.B) {
	benchFamily(b, tricheck.WRC, tricheck.Stack{
		Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

func BenchmarkFigure15WRCAtomicsOurs(b *testing.B) {
	benchFamily(b, tricheck.WRC, tricheck.Stack{
		Mapping: tricheck.RISCVAtomicsRefined, Model: tricheck.NMM(tricheck.Ours)})
}

// Figure 15, panel 2: mp and sb never show bugs; strictness shrinks from
// curr to ours (roach motel).
func BenchmarkFigure15MPAtomicsCurr(b *testing.B) {
	benchFamily(b, tricheck.MP, tricheck.Stack{
		Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

func BenchmarkFigure15MPAtomicsOurs(b *testing.B) {
	benchFamily(b, tricheck.MP, tricheck.Stack{
		Mapping: tricheck.RISCVAtomicsRefined, Model: tricheck.NMM(tricheck.Ours)})
}

func BenchmarkFigure15SBBaseCurr(b *testing.B) {
	benchFamily(b, tricheck.SB, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

// Figure 15, panel 3: iriw — 4 bugs on Base riscv-curr nMCA models.
func BenchmarkFigure15IRIWBaseCurr(b *testing.B) {
	benchFamily(b, tricheck.IRIW, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)})
}

func BenchmarkFigure15IRIWBaseOurs(b *testing.B) {
	benchFamily(b, tricheck.IRIW, tricheck.Stack{
		Mapping: tricheck.RISCVBaseRefined, Model: tricheck.NMM(tricheck.Ours)})
}

// Section 5.1.3 / Figure 15 companions: the same-address coherence
// families on the R→R-relaxing model.
func BenchmarkSection513CoRR(b *testing.B) {
	benchFamily(b, tricheck.CoRR, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.RMMModel(tricheck.Curr)})
}

func BenchmarkSection513CORSDWI(b *testing.B) {
	benchFamily(b, tricheck.CORSDWI, tricheck.Stack{
		Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.RMMModel(tricheck.Curr)})
}

// BenchmarkHeadline1701 regenerates the abstract's headline: the full
// 1,701-test suite on the Base+A riscv-curr nMM stack — 144 forbidden
// outcomes observed.
func BenchmarkHeadline1701(b *testing.B) {
	eng := tricheck.NewEngine()
	suite := tricheck.PaperSuite()
	s := tricheck.Stack{Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)}
	var bugs int
	for i := 0; i < b.N; i++ {
		res, err := eng.RunSuite(suite, s, 0)
		if err != nil {
			b.Fatal(err)
		}
		bugs = res.Tally.SpecifiedBugs
	}
	b.ReportMetric(float64(bugs), "headline-bugs")
}

// BenchmarkFigure15Aggregate runs the full Figure 15 matrix for one litmus
// family across all 28 stacks (the bottom-right chart of the figure).
func BenchmarkFigure15Aggregate(b *testing.B) {
	eng := tricheck.NewEngine()
	tests := tricheck.WRC.Generate()
	var stacks []tricheck.Stack
	for _, base := range []bool{true, false} {
		for _, v := range []tricheck.Variant{tricheck.Curr, tricheck.Ours} {
			stacks = append(stacks, tricheck.RISCVStacks(base, v)...)
		}
	}
	var total int
	for i := 0; i < b.N; i++ {
		results, err := eng.Sweep(tests, stacks, 0)
		if err != nil {
			b.Fatal(err)
		}
		total = 0
		for _, r := range results {
			total += r.Tally.Bugs
		}
	}
	b.ReportMetric(float64(total), "total-bugs-all-stacks")
}

// Tables 1–3: compilation throughput of the full suite under each mapping.
func benchCompile(b *testing.B, m *tricheck.Mapping) {
	b.Helper()
	suite := tricheck.PaperSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, t := range suite {
			if _, err := tricheck.CompileTest(m, t); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(suite)), "tests-compiled")
}

func BenchmarkTable1PowerLeadingSync(b *testing.B) { benchCompile(b, tricheck.PowerLeadingSync) }
func BenchmarkTable2BaseIntuitive(b *testing.B)    { benchCompile(b, tricheck.RISCVBaseIntuitive) }
func BenchmarkTable2BaseRefined(b *testing.B)      { benchCompile(b, tricheck.RISCVBaseRefined) }
func BenchmarkTable3AtomicsIntuitive(b *testing.B) { benchCompile(b, tricheck.RISCVAtomicsIntuitive) }
func BenchmarkTable3AtomicsRefined(b *testing.B)   { benchCompile(b, tricheck.RISCVAtomicsRefined) }

// Figure 7 (Table 7): one test across the whole model matrix.
func BenchmarkTable7ModelMatrix(b *testing.B) {
	eng := tricheck.NewEngine()
	tst := tricheck.WRC.Instantiate([]tricheck.Order{
		tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
	var bugs int
	for i := 0; i < b.N; i++ {
		bugs = 0
		for _, m := range tricheck.Models(tricheck.Curr) {
			r, err := eng.Run(tst, tricheck.Stack{Mapping: tricheck.RISCVBaseIntuitive, Model: m})
			if err != nil {
				b.Fatal(err)
			}
			if r.Verdict == tricheck.Bug {
				bugs++
			}
		}
	}
	b.ReportMetric(float64(bugs), "buggy-models") // 3: nWR, nMM, A9like
}

// Section 7: the compiler-mapping audit (trailing-sync counterexamples).
func BenchmarkSection7TrailingSyncAudit(b *testing.B) {
	eng := tricheck.NewEngine()
	tests := tricheck.RWC.Generate()
	s := tricheck.Stack{Mapping: tricheck.PowerTrailingSync, Model: tricheck.PowerA9()}
	var bugs int
	for i := 0; i < b.N; i++ {
		res, err := eng.RunSuite(tests, s, 0)
		if err != nil {
			b.Fatal(err)
		}
		bugs = res.Tally.Bugs
	}
	b.ReportMetric(float64(bugs), "counterexamples")
}

// Verification-farm throughput over the paper suite (tests/sec), cold
// vs warm memo cache. The warm benchmark's jobs are all cache hits, so
// it measures pure farm/cache overhead; `executions` should read 0.
func BenchmarkFarmColdSweep(b *testing.B) {
	suite := tricheck.PaperSuite()
	s := tricheck.Stack{Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := tricheck.NewEngine() // fresh: every job executes
		if _, err := eng.RunSuite(suite, s, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(suite)*b.N)/b.Elapsed().Seconds(), "tests/sec")
}

func BenchmarkFarmWarmSweep(b *testing.B) {
	suite := tricheck.PaperSuite()
	s := tricheck.Stack{Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)}
	eng := tricheck.NewEngine()
	eng.EnableMemo(0)
	if _, err := eng.RunSuite(suite, s, 0); err != nil { // prime the cache
		b.Fatal(err)
	}
	primed := eng.Executions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSuite(suite, s, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(suite)*b.N)/b.Elapsed().Seconds(), "tests/sec")
	b.ReportMetric(float64(eng.Executions()-primed), "executions")
}

// Component benchmarks: the two expensive toolflow steps in isolation.
func BenchmarkStep1C11Evaluation(b *testing.B) {
	tst := tricheck.IRIW.Instantiate([]tricheck.Order{
		tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC})
	for i := 0; i < b.N; i++ {
		eng := tricheck.NewEngine() // fresh: defeat the HLL cache
		if _, err := eng.HLL(tst); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStep3UspecEvaluation(b *testing.B) {
	tst := tricheck.IRIW.Instantiate([]tricheck.Order{
		tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC, tricheck.SC})
	prog, err := tricheck.CompileTest(tricheck.RISCVBaseIntuitive, tst)
	if err != nil {
		b.Fatal(err)
	}
	m := tricheck.NMM(tricheck.Curr)
	for i := 0; i < b.N; i++ {
		if _, err := m.Evaluate(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: eager (curr) vs lazy (ours) release implementations on the
// Figure 13 test — the design choice Section 5.2.3 argues about.
func BenchmarkAblationLazyRelease(b *testing.B) {
	eng := tricheck.NewEngine()
	tst := tricheck.MPAddrDep.Instantiate([]tricheck.Order{
		tricheck.Rel, tricheck.Rel, tricheck.Rlx, tricheck.Acq})
	var strictCurr, strictOurs int
	for i := 0; i < b.N; i++ {
		r1, err := eng.Run(tst, tricheck.Stack{Mapping: tricheck.RISCVAtomicsIntuitive, Model: tricheck.NMM(tricheck.Curr)})
		if err != nil {
			b.Fatal(err)
		}
		r2, err := eng.Run(tst, tricheck.Stack{Mapping: tricheck.RISCVAtomicsRefined, Model: tricheck.NMM(tricheck.Ours)})
		if err != nil {
			b.Fatal(err)
		}
		strictCurr, strictOurs = len(r1.StrictOutcomes), len(r2.StrictOutcomes)
	}
	b.ReportMetric(float64(strictCurr), "strict-outcomes-eager")
	b.ReportMetric(float64(strictOurs), "strict-outcomes-lazy")
}

// Synthesis benchmarks: cold enumeration of the critical-cycle space
// (every shape lowered, probed for degeneracy and deduplicated) and a
// warm memoized sweep of the synthesized suite — the two costs a
// synthesized corpus adds on top of the shipped one.
func BenchmarkSynthEnumerateCold(b *testing.B) {
	var shapes int
	for i := 0; i < b.N; i++ {
		res, err := tricheck.SynthesizeShapes(tricheck.SynthOptions{MaxLen: 6, Deps: true})
		if err != nil {
			b.Fatal(err)
		}
		shapes = len(res)
	}
	b.ReportMetric(float64(shapes), "shapes")
	b.ReportMetric(float64(shapes*b.N)/b.Elapsed().Seconds(), "shapes/sec")
}

func synthSweepSuite(b *testing.B) []*tricheck.Test {
	b.Helper()
	res, err := tricheck.SynthesizeShapes(tricheck.SynthOptions{MaxLen: 5})
	if err != nil {
		b.Fatal(err)
	}
	var tests []*tricheck.Test
	for _, s := range tricheck.SynthNovelOnly(res) {
		tests = append(tests, s.Shape.Generate()...)
	}
	return tests
}

func BenchmarkSynthColdSweep(b *testing.B) {
	tests := synthSweepSuite(b)
	s := tricheck.Stack{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := tricheck.NewEngine() // fresh: every job executes
		if _, err := eng.RunSuite(tests, s, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tests)*b.N)/b.Elapsed().Seconds(), "tests/sec")
}

func BenchmarkSynthWarmSweep(b *testing.B) {
	tests := synthSweepSuite(b)
	s := tricheck.Stack{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NMM(tricheck.Curr)}
	eng := tricheck.NewEngine()
	eng.EnableMemo(0)
	if _, err := eng.RunSuite(tests, s, 0); err != nil { // prime the cache
		b.Fatal(err)
	}
	primed := eng.Executions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.RunSuite(tests, s, 0); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tests)*b.N)/b.Elapsed().Seconds(), "tests/sec")
	b.ReportMetric(float64(eng.Executions()-primed), "executions")
}

// Operational second-opinion backend (backend=opsim|both): the
// enumeration driver's exhaustive-interleaving costs, and the full
// cross-check sweep overhead on top of the axiomatic path. CI adds
// these to the BENCH_8.json artifact; they have no BENCH_7 baseline, so
// the perf gate ignores them (first capture becomes the baseline for
// the next PR).
func benchOpsimEnumerate(b *testing.B, shape *tricheck.Shape, m *tricheck.Model) {
	b.Helper()
	test := shape.Generate()[0]
	prog, err := tricheck.CompileTest(tricheck.RISCVBaseIntuitive, test)
	if err != nil {
		b.Fatal(err)
	}
	var states, outcomes int
	for i := 0; i < b.N; i++ {
		sim, err := tricheck.OperationalForConfig(m.Config, prog)
		if err != nil {
			b.Fatal(err)
		}
		outcomes = len(sim.Outcomes())
		states = sim.StateCount()
	}
	b.ReportMetric(float64(states), "states")
	b.ReportMetric(float64(outcomes), "outcomes")
}

// BenchmarkOpsimEnumerateSBTSO: the TSO machine (store buffers +
// forwarding) on a store-buffering test — the canonical relaxed case.
func BenchmarkOpsimEnumerateSBTSO(b *testing.B) {
	benchOpsimEnumerate(b, tricheck.SB, tricheck.TSOModel())
}

// BenchmarkOpsimEnumerateIRIWNWR: the nMCA simulator on iriw, the
// widest shipped shape — per-observer visibility orders blow up the
// interleaving space, making this the driver's worst case.
func BenchmarkOpsimEnumerateIRIWNWR(b *testing.B) {
	benchOpsimEnumerate(b, tricheck.IRIW, tricheck.NWRModel(tricheck.Curr))
}

// BenchmarkOpsimBothSweepSB: a backend=both farm sweep of the sb family
// over the opsim-supported curr machines — the axiomatic sweep plus the
// operational second opinion and the observable-set diff.
func BenchmarkOpsimBothSweepSB(b *testing.B) {
	tests := tricheck.SB.Generate()
	stacks := []tricheck.Stack{
		{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.SCProofModel()},
		{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.WRModel(tricheck.Curr)},
		{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.TSOModel()},
		{Mapping: tricheck.RISCVBaseIntuitive, Model: tricheck.NWRModel(tricheck.Curr)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng := tricheck.NewEngine() // fresh: every job executes both backends
		results, err := eng.SweepStreamBackend(context.Background(), tests, stacks, 0, tricheck.BackendBoth, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, sr := range results {
			if sr.Tally.Divergent != 0 {
				b.Fatalf("cross-check divergence on %s", sr.Stack.Name())
			}
		}
	}
	b.ReportMetric(float64(len(tests)*len(stacks)*b.N)/b.Elapsed().Seconds(), "jobs/sec")
}
