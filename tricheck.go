// Package tricheck is the public API of this TriCheck reproduction: a
// full-stack memory consistency model verification framework spanning the
// high-level language (C11), compiler mapping, ISA and microarchitecture
// layers (Trippel et al., "TriCheck: Memory Model Verification at the
// Trisection of Software, Hardware, and ISA", ASPLOS 2017).
//
// The facade re-exports the pieces a user composes:
//
//   - litmus tests and the Figure 5 template generator (internal/litmus),
//   - the C11 axiomatic model (internal/c11),
//   - compiler mappings, Tables 1–3 (internal/compile),
//   - µspec microarchitecture models, Table 7 (internal/uspec),
//   - the four-step verification engine (internal/core).
//
// Quick start:
//
//	eng := tricheck.NewEngine()
//	test := tricheck.WRC.Instantiate([]tricheck.Order{
//	    tricheck.Rlx, tricheck.Rlx, tricheck.Rel, tricheck.Acq, tricheck.Rlx})
//	res, err := eng.Run(test, tricheck.Stack{
//	    Mapping: tricheck.RISCVBaseIntuitive,
//	    Model:   tricheck.NMM(tricheck.Curr),
//	})
//	// res.Verdict == tricheck.Bug: the Figure 3 outcome is forbidden by
//	// C11 yet observable on an nMCA RISC-V implementation.
package tricheck

import (
	"io"

	"tricheck/internal/c11"
	"tricheck/internal/compile"
	"tricheck/internal/core"
	"tricheck/internal/corpus"
	"tricheck/internal/cover"
	"tricheck/internal/farm"
	"tricheck/internal/isa"
	"tricheck/internal/litmus"
	"tricheck/internal/mem"
	"tricheck/internal/obs"
	"tricheck/internal/opsim"
	"tricheck/internal/report"
	"tricheck/internal/synth"
	"tricheck/internal/uspec"
)

// Core engine types.
type (
	// Engine runs the four-step toolflow with HLL caching.
	Engine = core.Engine
	// Stack pairs a compiler mapping with a µspec model.
	Stack = core.Stack
	// Verdict classifies a test result (Bug / OverlyStrict / Equivalent).
	Verdict = core.Verdict
	// TestResult is the per-test full-stack verdict.
	TestResult = core.TestResult
	// SuiteResult aggregates a suite run.
	SuiteResult = core.SuiteResult
	// Tally counts verdicts.
	Tally = core.Tally
)

// Verdict values.
const (
	Equivalent   = core.Equivalent
	OverlyStrict = core.OverlyStrict
	Bug          = core.Bug
	// Divergence reports a backend=both cross-check disagreement: the
	// axiomatic µhb model and the operational simulator computed
	// different observable-outcome sets for the same (test, stack).
	Divergence = core.Divergence
)

// Verdict backends. The µhb axiomatic evaluator is the reference
// backend; the operational simulators (internal/opsim) are the second
// opinion. BackendBoth runs both and cross-checks their observable
// sets, yielding Divergence verdicts on disagreement.
type (
	// Backend selects which verdict engine(s) a sweep runs.
	Backend = core.Backend
	// OpsimMemo is the operational half of a cross-checked result
	// (TestResult.Opsim): observable set, symmetric difference and trace
	// witness.
	OpsimMemo = core.OpsimMemo
)

// Backend values.
const (
	BackendUHB   = core.BackendUHB
	BackendOpsim = core.BackendOpsim
	BackendBoth  = core.BackendBoth
)

// ParseBackend parses a backend selector ("", "uhb", "opsim", "both").
func ParseBackend(s string) (Backend, error) { return core.ParseBackend(s) }

// ValidateBackendStacks checks a backend against a stack selection:
// backend=opsim hard-fails when any stack's µspec config has no
// operational machine (backend=both skips those per-result instead).
func ValidateBackendStacks(b Backend, stacks []Stack) error {
	return core.ValidateBackendStacks(b, stacks)
}

// NewEngine returns a fresh verification engine.
func NewEngine() *Engine { return core.NewEngine() }

// RISCVStacks builds the Figure 15 stack matrix for one ISA flavour and
// MCM version.
func RISCVStacks(base bool, v Variant) []Stack { return core.RISCVStacks(base, v) }

// Verification farm types (internal/farm wiring). RunSuite and Sweep
// run on a sharded work-stealing scheduler; enabling the engine's memo
// cache (Engine.EnableMemo / LoadMemoSnapshot) makes repeated sweeps
// re-verify only what changed.
type (
	// FarmStats reports what the most recent farm run did
	// (Engine.LastFarmStats).
	FarmStats = farm.Stats
	// CacheStats reports memo-cache hit/miss counters
	// (Engine.MemoStats).
	CacheStats = farm.CacheStats
	// Progress is one streamed farm result (Engine.SweepStream).
	Progress = core.Progress
)

// StackFingerprint returns the canonical content hash of a stack's
// mapping recipes and model configuration.
func StackFingerprint(s Stack) string { return core.StackFingerprint(s) }

// Observability (internal/obs wiring). Every engine sweep records into
// the process-wide metrics registry and slow-trace ring; the re-exports
// below are what the CLIs surface (tricheckd's /metrics and /v1/traces
// serve the same registry and ring over HTTP).

// JobCost is one cell of an engine's per-(test, stack) cost matrix:
// cumulative executed wall time split by toolflow phase
// (Engine.CostMatrix, the data behind `tricheck top`).
type JobCost = core.JobCost

// Verification-coverage ledger (internal/cover wiring). Every engine
// carries one next to its cost matrix (Engine.Coverage): costs say where
// the time went, the ledger says what the verification exercised — which
// axioms fired edges, owned stored edges, and witnessed forbidding
// cycles, per model, plus the per-(test, config) verdict vectors behind
// the discrimination matrix. tricheckd serves the same snapshot at
// GET /v1/coverage.
type (
	// CoverageLedger is an engine's coverage accumulator
	// (Engine.Coverage). Snapshot, Discrimination and TotalsNow are its
	// read side.
	CoverageLedger = cover.Ledger
	// CoverageSnapshot is a ledger's deterministic, portable JSON form —
	// the GET /v1/coverage body and the `coverage -coverage-out` /
	// `coverage diff` file format.
	CoverageSnapshot = cover.Snapshot
	// CoverageTotals is a ledger's summary line (axioms covered per
	// kind, jobs, vectors).
	CoverageTotals = cover.Totals
	// Discrimination is the per-(test, config) verdict-vector matrix.
	Discrimination = cover.Discrimination
	// DiscriminatingSuite is the greedy set-cover reduction of a
	// discrimination matrix: the minimal test suite separating every
	// separable pair of configs.
	DiscriminatingSuite = cover.Suite
	// CoverageDiff reports verdict flips and axiom-coverage regressions
	// between two snapshots.
	CoverageDiff = cover.DiffResult
)

// AxiomNames returns the µspec axiom catalogue the coverage ledger is
// keyed by, in bit order.
func AxiomNames() []string { return uspec.AxiomNames() }

// DiffCoverage compares two coverage snapshots — typically before and
// after a model edit: verdict flips on shared (test, config) vectors and
// axiom-coverage regressions on shared models.
func DiffCoverage(old, cur *CoverageSnapshot) *CoverageDiff { return cover.Diff(old, cur) }

// SlowTrace is one retained slow span (a verify request or a sampled
// verdict job) with its per-phase durations.
type SlowTrace = obs.TraceRecord

// SlowTraces returns the process slow-trace ring, slowest first.
func SlowTraces() []SlowTrace { return obs.DefaultTraces.Slowest() }

// SetVerdictSampling sets per-verdict span sampling to 1-in-n
// (n <= 0 disables; default 16).
func SetVerdictSampling(n int) { obs.SetVerdictSampling(n) }

// SetCycleSampling sets innermost-loop overlay cycle-check timing
// sampling to 1-in-n (n <= 0 disables — the default, preserving the
// zero-overhead verdict hot path).
func SetCycleSampling(n int) { obs.SetCycleSampling(n) }

// IncrementalStats returns the process-wide µhb incremental-engine
// counters: candidate acyclicity verdicts that reused the maintained
// topological order vs. rebuilt it from scratch.
func IncrementalStats() (reuse, rebuild uint64) { return uspec.IncrementalStats() }

// WriteMetricsJSON dumps the process metrics registry as indented JSON
// (the -metrics-out format).
func WriteMetricsJSON(w io.Writer) error { return obs.Default.WriteJSON(w) }

// WriteMetricsPrometheus renders the process metrics registry in the
// Prometheus text exposition format — the same body tricheckd's
// /metrics serves.
func WriteMetricsPrometheus(w io.Writer) error { return obs.Default.WritePrometheus(w) }

// ErrSnapshotVersion reports a memo-cache snapshot written by an
// incompatible build (errors.Is against Engine.LoadMemoSnapshot's
// error). Treat it as a cold start: warn, continue, and let the next
// save overwrite the stale file.
var ErrSnapshotVersion = farm.ErrSnapshotVersion

// LoadMemoSnapshotLenient loads a memo-cache snapshot, tolerating the
// recoverable cases: a missing file is a silent cold start, and an
// incompatible-version snapshot warns on w and cold-starts (the next
// SaveMemoSnapshot overwrites it). Any other error is returned.
func LoadMemoSnapshotLenient(eng *Engine, path string, w io.Writer) error {
	return core.LoadMemoSnapshotLenient(eng, path, w)
}

// SelectStacks resolves the stack selectors shared by every frontend
// (tricheck, trisynth, tricheckd): isa is "base", "base+a" or "both";
// variant is "curr", "ours" or "both". Models come from the builtin
// registry, built once and shared.
func SelectStacks(isa, variant string) ([]Stack, error) {
	return core.SelectStacks(isa, variant)
}

// SelectStacksModels pairs explicit models — builtins, parsed spec
// files, or enumerated lattice configs — with the Figure 15 mapping of
// each model's variant over the selected ISA flavours.
func SelectStacksModels(isa string, models []*Model) ([]Stack, error) {
	return core.SelectStacksModels(isa, models)
}

// LoadModelFiles reads and validates µspec model spec files (the
// -model-file flag's loader).
func LoadModelFiles(paths []string) ([]*Model, error) { return core.LoadModels(paths) }

// SelectStacksFiles resolves stacks for -model-file frontends, loading
// the specs and enforcing the shared variant-exclusivity contract
// (variantSet = the -variant flag was explicitly given).
func SelectStacksFiles(isa string, modelFiles []string, variantSet bool) ([]Stack, error) {
	return core.SelectStacksFiles(isa, modelFiles, variantSet)
}

// ResolveModel finds one builtin model by name under a single-variant
// selector ("curr" or "ours"), erroring with the known model set on a
// miss.
func ResolveModel(name, variant string) (*Model, error) { return core.ResolveModel(name, variant) }

// JobKey returns the farm/cache key of one (test, stack) job under the
// default (uhb) backend.
func JobKey(t *Test, s Stack) string { return core.JobKey(t, s) }

// JobKeyBackend returns the backend-tagged farm/cache key of one
// (test, stack, backend) job; the uhb key equals JobKey so existing
// memo snapshots stay warm.
func JobKeyBackend(t *Test, s Stack, b Backend) string { return core.JobKeyBackend(t, s, b) }

// Corpus types (internal/corpus): an on-disk litmus corpus in the herd
// C litmus format.
type (
	// Corpus is a directory-tree litmus-test registry.
	Corpus = corpus.Corpus
	// CorpusEntry is one corpus test with provenance.
	CorpusEntry = corpus.Entry
)

// LoadCorpus reads every .litmus file under dir into a registry.
func LoadCorpus(dir string) (*Corpus, error) { return corpus.Load(dir) }

// ExportCorpus writes tests to dir as <family>/<name>.litmus files.
func ExportCorpus(dir string, tests []*Test) (int, error) { return corpus.Export(dir, tests) }

// EmitLitmus renders a test in the herd C litmus format.
func EmitLitmus(t *Test) (string, error) { return corpus.EmitString(t) }

// ParseLitmus parses a herd C litmus test.
func ParseLitmus(src string) (*Test, error) { return corpus.ParseString(src) }

// Litmus testing types.
type (
	// Shape is a litmus-test template (Figure 5).
	Shape = litmus.Shape
	// Test is one memory-order instantiation of a shape.
	Test = litmus.Test
	// Outcome is a canonical final-state key ("r0=1; r1=0").
	Outcome = mem.Outcome
	// Order is a C11 memory order.
	Order = c11.Order
)

// The paper's litmus shapes.
var (
	MP        = litmus.MP
	SB        = litmus.SB
	WRC       = litmus.WRC
	RWC       = litmus.RWC
	IRIW      = litmus.IRIW
	CoRR      = litmus.CoRR
	CORSDWI   = litmus.CORSDWI
	LB        = litmus.LB
	ISA2      = litmus.ISA2
	MPAddrDep = litmus.MPAddrDep
)

// C11 memory orders.
const (
	NA     = c11.NA
	Rlx    = c11.Rlx
	Acq    = c11.Acq
	Rel    = c11.Rel
	AcqRel = c11.AcqRel
	SC     = c11.SC
)

// Litmus-shape synthesis (internal/synth): enumerate every critical
// cycle over {po, pos, dep, rfe, coe, fre} up to a bound and lower each
// to a Shape that expands, compiles, sweeps and exports exactly like
// the shipped ones.
type (
	// SynthOptions bounds a synthesis run (cycle length, threads,
	// locations, dependency edges).
	SynthOptions = synth.Options
	// Synthesized is one synthesized shape with its cycle provenance
	// and novelty classification.
	Synthesized = synth.Synthesized
	// SynthCycle is a resolved critical cycle.
	SynthCycle = synth.Cycle
	// SynthStats summarizes a synthesis run.
	SynthStats = synth.Stats
)

// SynthesizeShapes enumerates, lowers and deduplicates every critical
// cycle within the bounds. See internal/synth for the cycle grammar.
func SynthesizeShapes(opts SynthOptions) ([]*Synthesized, error) { return synth.Enumerate(opts) }

// SynthNovelOnly filters a synthesis run to shapes not shipped with the
// framework.
func SynthNovelOnly(in []*Synthesized) []*Synthesized { return synth.NovelOnly(in) }

// SynthShapes projects a synthesis run to its litmus templates.
func SynthShapes(in []*Synthesized) []*Shape { return synth.Shapes(in) }

// SynthSummarize tallies a synthesis run.
func SynthSummarize(in []*Synthesized) SynthStats { return synth.Summarize(in) }

// SynthFirstInstance instantiates a shape's canonical first-choice
// variant (the dedup-probe instance; one representative per shape).
func SynthFirstInstance(s *Shape) *Test { return synth.FirstChoiceInstance(s) }

// StructuralFingerprint returns the label- and value-anonymized
// canonical fingerprint of a test — the shape-level identity the
// synthesizer dedups by (NOT a memo-cache key; see litmus package docs).
func StructuralFingerprint(t *Test) string { return t.StructuralFingerprint() }

// PaperSuite generates the paper's 1,701-test evaluation suite.
func PaperSuite() []*Test { return litmus.PaperSuite() }

// PaperShapes returns the seven paper-suite shapes.
func PaperShapes() []*Shape { return litmus.PaperShapes() }

// AllShapes returns every shipped shape.
func AllShapes() []*Shape { return litmus.AllShapes() }

// ShapeByName finds a shape by name, or nil.
func ShapeByName(name string) *Shape { return litmus.ShapeByName(name) }

// Compiler mappings (Tables 1–3 and the Section 7 trailing-sync mapping).
type Mapping = compile.Mapping

var (
	RISCVBaseIntuitive    = compile.RISCVBaseIntuitive
	RISCVBaseRefined      = compile.RISCVBaseRefined
	RISCVAtomicsIntuitive = compile.RISCVAtomicsIntuitive
	RISCVAtomicsRefined   = compile.RISCVAtomicsRefined
	PowerLeadingSync      = compile.PowerLeadingSync
	PowerTrailingSync     = compile.PowerTrailingSync
	ARMv7Standard         = compile.ARMv7Standard
	ARMv7HazardFix        = compile.ARMv7HazardFix
	X86TSO                = compile.X86TSO
)

// ISAProgram is a compiled instruction-level litmus program.
type ISAProgram = isa.Program

// CompileTest lowers a litmus test through a mapping (toolflow step 2).
func CompileTest(m *Mapping, t *Test) (*ISAProgram, error) {
	return compile.Compile(m, t.Prog)
}

// Mappings returns every shipped mapping.
func Mappings() []*Mapping { return compile.Mappings() }

// MappingByName finds a mapping by name, or nil.
func MappingByName(name string) *Mapping { return compile.MappingByName(name) }

// Microarchitecture models (Table 7 and companions). A model is data: a
// declarative ModelSpec with a herd-style text format, semantic
// validation and a canonical config fingerprint; the builtins ship as
// spec files parsed once into a registry.
type (
	// Model is a µspec microarchitecture model.
	Model = uspec.Model
	// ModelConfig is a model's declarative configuration: the relaxation
	// profile, MCM variant, name and description.
	ModelConfig = uspec.Config
	// ModelSpec is the serializable form of a ModelConfig (they are the
	// same type; the spec name emphasizes the parse/emit round trip).
	ModelSpec = uspec.Spec
	// Variant selects riscv-curr or riscv-ours semantics.
	Variant = uspec.Variant
	// PreparedModel is a (model, compiled program) pair with its static
	// µhb skeleton prebuilt — the two-tier evaluation core's verdict-path
	// handle. Evaluate/Observable stream every execution candidate
	// through a pooled overlay without materializing a graph or
	// formatting a single diagnostic; call Close when done.
	PreparedModel = uspec.Prepared
)

// PrepareModel builds the static µhb skeleton of a compiled program under
// a model exactly once and returns the reusable evaluator. Engine sweeps
// do this per (test, stack) job automatically; use it directly when
// evaluating one program many times (custom enumeration, ablations).
func PrepareModel(m *Model, prog *ISAProgram) *PreparedModel { return m.Prepare(prog) }

// MCM variants.
const (
	Curr = uspec.Curr
	Ours = uspec.Ours
)

// Table 7 model constructors.
var (
	WRModel  = uspec.WR
	RWRModel = uspec.RWR
	RWMModel = uspec.RWM
	RMMModel = uspec.RMM
	NWRModel = uspec.NWR
	NMMModel = uspec.NMM
	A9like   = uspec.A9like
)

// NMM returns the shared-store-buffer nMCA model (re-exported by its paper
// name for the quick-start example).
func NMM(v Variant) *Model { return uspec.NMM(v) }

// Models returns the seven Table 7 models for a variant.
func Models(v Variant) []*Model { return uspec.Models(v) }

// ModelByName finds a Table 7 model by name, or nil.
func ModelByName(name string, v Variant) *Model { return uspec.ModelByName(name, v) }

// PowerA9 returns the Section 7 Power/ARMv7 Cortex-A9-like model.
func PowerA9() *Model { return uspec.PowerA9() }

// PowerA9Fixed returns PowerA9 with the load→load hazard repaired.
func PowerA9Fixed() *Model { return uspec.PowerA9Fixed() }

// TSOModel returns the x86-TSO-like model (pairs with X86TSO).
func TSOModel() *Model { return uspec.TSO() }

// SCProofModel returns the no-relaxations ablation baseline.
func SCProofModel() *Model { return uspec.SCProof() }

// AlphaLike returns the dependency-free ablation model (Section 4.1.3).
func AlphaLike() *Model { return uspec.AlphaLike() }

// Declarative model specs: parse, emit, validate, fingerprint and
// enumerate microarchitecture configurations as data.

// ParseModelSpec parses and validates a model spec in the uspec text
// format (see internal/uspec/spec.go for the format reference).
func ParseModelSpec(src string) (*ModelSpec, error) { return uspec.ParseSpec(src) }

// NewModel wraps a validated configuration as an evaluable model.
func NewModel(c ModelConfig) (*Model, error) { return c.Model() }

// BuiltinModels returns every registered builtin model (Table 7 under
// both variants plus the companions), shared and immutable.
func BuiltinModels() []*Model { return uspec.Builtins().All() }

// EnumerateModelConfigs walks the full legal relaxation lattice for one
// MCM variant — every semantically distinct, validation-clean Config,
// deduplicated by config fingerprint (50 per variant).
func EnumerateModelConfigs(v Variant) []ModelConfig { return uspec.EnumerateConfigs(v) }

// ModelFingerprint returns a model's canonical config fingerprint: a
// content hash of its relaxation bits and variant, independent of its
// display name. Memo-cache stack identity builds on it.
func ModelFingerprint(m *Model) string { return m.Config.Fingerprint() }

// Reporting helpers.

// WriteFigure15 renders suite results in the paper's Figure 15 layout.
func WriteFigure15(w io.Writer, results []*SuiteResult) { report.Figure15(w, results) }

// WriteCSV renders suite results as CSV.
func WriteCSV(w io.Writer, results []*SuiteResult) { report.CSV(w, results) }

// WriteTable7 renders the µspec model matrix.
func WriteTable7(w io.Writer, v Variant) { report.Table7(w, v) }

// WriteMappingTable renders a compiler mapping like Tables 1–3.
func WriteMappingTable(w io.Writer, m *Mapping) { report.MappingTable(w, m) }

// StreamProgress drains a SweepStream event channel, writing periodic
// progress lines to w; it returns when the channel closes.
func StreamProgress(w io.Writer, events <-chan Progress, every int) {
	report.StreamProgress(w, events, every)
}

// Operational cross-validation simulators (internal/opsim): independent
// interleaving-based semantics for the WR, TSO and nWR machines, used to
// validate the axiomatic µhb models and to extract concrete witness
// interleavings.

// OperationalWR returns an exhaustive interleaving simulator of the WR
// machine for a compiled program.
func OperationalWR(p *ISAProgram) *opsim.Simulator { return opsim.New(p) }

// OperationalSC returns the write-through (no store buffering)
// simulator — an operational SC machine.
func OperationalSC(p *ISAProgram) *opsim.Simulator { return opsim.NewSC(p) }

// OperationalForConfig maps a µspec model configuration to its
// operational machine for a compiled program (the backend=opsim/both
// enumeration driver), or a capability error when the config's
// relaxation profile has no simulator.
func OperationalForConfig(c ModelConfig, p *ISAProgram) (opsim.Enumerator, error) {
	return opsim.ForConfig(c, p)
}

// OperationalTSO returns the WR simulator with store-buffer forwarding
// (the x86-TSO machine).
func OperationalTSO(p *ISAProgram) *opsim.Simulator { return opsim.NewTSO(p) }

// OperationalNWR returns the operational nMCA (nWR) simulator.
func OperationalNWR(p *ISAProgram) *opsim.NMCASimulator { return opsim.NewNMCA(p) }
